"""Saving and loading profiles.

A profile (MUCS + MNUCS + the schema it refers to) is the artifact a
profiling run produces; deployments persist it so the next process can
re-attach SWAN without a holistic re-run (only the indexes are rebuilt,
which is linear). The format is plain JSON with column *names*, so a
profile survives column reordering as long as names are stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.core.repository import Profile
from repro.errors import ProfileStateError
from repro.faults import fsops
from repro.lattice.combination import columns_of, mask_of
from repro.storage.schema import Schema

FORMAT_VERSION = 1

SITE_PROFILE_DUMP = fsops.register_site(
    "profile.dump.open", "write a profile JSON artifact"
)
SITE_PROFILE_LOAD = fsops.register_site(
    "profile.load.open", "read a profile JSON artifact"
)


@dataclass(frozen=True)
class StoredProfile:
    """A profile together with the column names it was computed for."""

    columns: tuple[str, ...]
    profile: Profile

    def masks_for(self, schema: Schema) -> tuple[list[int], list[int]]:
        """Re-resolve the stored combinations against ``schema``.

        Raises :class:`~repro.errors.ProfileStateError` when the schema
        lacks one of the stored columns.
        """
        position: dict[str, int] = {}
        for name in self.columns:
            try:
                position[name] = schema.index_of(name)
            except Exception as exc:
                raise ProfileStateError(
                    f"stored profile references column {name!r} missing "
                    "from the target schema"
                ) from exc

        def remap(masks: Iterable[int]) -> list[int]:
            return [
                mask_of(position[self.columns[index]] for index in columns_of(mask))
                for mask in masks
            ]

        return remap(self.profile.mucs), remap(self.profile.mnucs)


def dump_profile(schema: Schema, profile: Profile, path: str) -> None:
    """Write a profile as JSON (column-name based, version-tagged)."""
    names = list(schema.names)
    payload = {
        "format_version": FORMAT_VERSION,
        "columns": names,
        "mucs": [[names[c] for c in columns_of(mask)] for mask in profile.mucs],
        "mnucs": [[names[c] for c in columns_of(mask)] for mask in profile.mnucs],
    }
    with fsops.open_(SITE_PROFILE_DUMP, path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_profile(path: str) -> StoredProfile:
    """Read a profile written by :func:`dump_profile`."""
    with fsops.open_(SITE_PROFILE_LOAD, path) as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ProfileStateError(
            f"unsupported profile format version {version!r} in {path}"
        )
    columns = tuple(payload["columns"])
    position = {name: index for index, name in enumerate(columns)}

    def masks(key: str) -> list[int]:
        return [
            mask_of(position[name] for name in combination)
            for combination in payload[key]
        ]

    return StoredProfile(
        columns=columns,
        profile=Profile.from_masks(masks("mucs"), masks("mnucs")),
    )
