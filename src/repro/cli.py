"""``repro-profile``: profile a CSV file from the command line.

Examples::

    repro-profile data.csv                       # discover MUCS/MNUCS
    repro-profile data.csv --algorithm gordian   # pick the engine
    repro-profile data.csv --verify              # re-check the result
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.profiling.discovery import available_algorithms, discover
from repro.profiling.verify import verify_profile
from repro.storage.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Discover unique / non-unique column combinations in a CSV file.",
    )
    parser.add_argument("csv_path", help="input CSV file with a header row")
    parser.add_argument(
        "--algorithm",
        default="ducc",
        choices=available_algorithms(),
        help="discovery engine (default: ducc)",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV delimiter (default ',')"
    )
    parser.add_argument(
        "--columns", type=int, default=None,
        help="profile only the first N columns",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="re-check every reported combination against the data",
    )
    parser.add_argument(
        "--max-print", type=int, default=50,
        help="print at most this many combinations per set (default 50)",
    )
    parser.add_argument(
        "--save-profile", metavar="PATH", default=None,
        help="save the discovered profile as JSON (re-attachable later)",
    )
    parser.add_argument(
        "--fds", type=int, metavar="MAX_LHS", default=None,
        help="also discover minimal functional dependencies with at "
        "most MAX_LHS left-hand-side columns",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print the full profiling report (column statistics, keys, "
        "FDs and INDs) instead of the plain MUCS/MNUCS listing",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="after profiling, keep reading CSV rows (no header) from "
        "stdin as insert batches and report profile changes per batch",
    )
    parser.add_argument(
        "--batch-size", type=int, default=100,
        help="rows per batch in --follow mode (default 100)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relation = Relation.from_csv(args.csv_path, delimiter=args.delimiter)
    if args.columns is not None:
        relation = relation.restrict_columns(args.columns)
    print(
        f"profiling {args.csv_path}: {len(relation)} rows x "
        f"{relation.n_columns} columns with {args.algorithm}"
    )
    if args.summary:
        from repro.profiling.summary import summarize

        summary = summarize(
            relation,
            algorithm=args.algorithm,
            with_fds=args.fds,
            with_inds=True,
        )
        print()
        print(summary.render(max_items=args.max_print))
        if args.save_profile:
            from repro.core.repository import Profile
            from repro.profiling.persistence import dump_profile

            dump_profile(
                relation.schema,
                Profile.from_masks(summary.mucs, summary.mnucs),
                args.save_profile,
            )
            print(f"\nprofile saved to {args.save_profile}")
        return 0
    started = time.perf_counter()
    mucs, mnucs = discover(relation, args.algorithm)
    elapsed = time.perf_counter() - started
    schema = relation.schema
    print(f"done in {elapsed:.2f}s: {len(mucs)} minimal uniques, "
          f"{len(mnucs)} maximal non-uniques")
    print("\nminimal uniques:")
    for mask in mucs[: args.max_print]:
        print(f"  {schema.combination(mask)}")
    if len(mucs) > args.max_print:
        print(f"  ... and {len(mucs) - args.max_print} more")
    print("\nmaximal non-uniques:")
    for mask in mnucs[: args.max_print]:
        print(f"  {schema.combination(mask)}")
    if len(mnucs) > args.max_print:
        print(f"  ... and {len(mnucs) - args.max_print} more")
    if args.verify:
        verify_profile(relation, mucs, mnucs, exhaustive=True)
        print("\nverification passed: the profile is exact")
    if args.save_profile:
        from repro.core.repository import Profile
        from repro.profiling.persistence import dump_profile

        dump_profile(schema, Profile.from_masks(mucs, mnucs), args.save_profile)
        print(f"profile saved to {args.save_profile}")
    if args.fds is not None:
        from repro.fd import discover_fds

        started = time.perf_counter()
        fds = discover_fds(relation, max_lhs=args.fds)
        print(
            f"\n{len(fds)} minimal functional dependencies "
            f"(LHS <= {args.fds}) in {time.perf_counter() - started:.2f}s:"
        )
        for fd in fds[: args.max_print]:
            print(f"  {fd.named(schema)}")
        if len(fds) > args.max_print:
            print(f"  ... and {len(fds) - args.max_print} more")
    if args.follow:
        return _follow(relation, mucs, mnucs, args)
    return 0


def _follow(relation, mucs, mnucs, args) -> int:
    """Stream insert batches from stdin through SWAN (--follow mode)."""
    import csv as csv_module
    import sys as sys_module

    from repro.core.swan import SwanProfiler

    schema = relation.schema
    profiler = SwanProfiler(relation, mucs, mnucs, maintain_plis=False)
    print(
        f"\nfollowing stdin: CSV rows with {len(schema)} fields, "
        f"batches of {args.batch_size} (EOF to stop)"
    )
    reader = csv_module.reader(sys_module.stdin)
    batch: list[tuple] = []
    batch_number = 0

    def flush() -> None:
        nonlocal batch, batch_number
        if not batch:
            return
        batch_number += 1
        before = profiler.snapshot()
        started = time.perf_counter()
        after = profiler.handle_inserts(batch)
        elapsed = time.perf_counter() - started
        gained = len(set(after.mucs) - set(before.mucs))
        lost = len(set(before.mucs) - set(after.mucs))
        print(
            f"batch {batch_number}: {len(batch)} rows in {elapsed * 1000:.1f} ms; "
            f"minimal uniques {len(before.mucs)} -> {len(after.mucs)} "
            f"(+{gained}/-{lost})"
        )
        batch = []

    for row in reader:
        if len(row) != len(schema):
            print(f"skipping row with {len(row)} fields", file=sys_module.stderr)
            continue
        batch.append(tuple(row))
        if len(batch) >= args.batch_size:
            flush()
    flush()
    print(
        f"done: {len(relation)} rows total, "
        f"{len(profiler.minimal_uniques())} minimal uniques"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
