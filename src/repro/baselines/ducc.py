"""DUCC: random-walk unique discovery over PLIs (Heise et al., PVLDB'13).

DUCC walks the column-combination lattice: from a non-unique node it
climbs to a random unclassified superset, from a unique node it descends
to a random unclassified subset, so the walk oscillates around the
unique/non-unique border where the minimal uniques and maximal
non-uniques live. Combinations are classified by intersecting position
list indexes, reusing the parent's PLI along the walk. Pruning uses the
same UGraph/NUGraph implication logic as SWAN's delete path: supersets
of known uniques and subsets of known non-uniques are classified for
free.

Completeness comes from *hole detection* through the transversal
duality: at any point, the minimal combinations not contained in any
discovered maximal non-unique are exactly the minimal-unique candidates
implied by the current border. Candidates that are not yet classified
(or turn out non-unique) are holes the walk has missed; they seed
further walks. When every candidate verifies as unique, the border is
exact (proof in DESIGN.md section 2).
"""

from __future__ import annotations

import random
import time
from typing import Iterable

from repro.errors import BudgetExceededError

from repro.lattice.combination import (
    full_mask,
    immediate_subsets,
    immediate_supersets,
    iter_bits,
)
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import mucs_from_mnucs
from repro.storage.fastpli import ArrayPli
from repro.storage.relation import Relation


class Ducc:
    """One discovery run over a fixed relation instance."""

    def __init__(
        self,
        relation: Relation,
        seed: int = 0,
        known_uniques: Iterable[int] = (),
        known_non_uniques: Iterable[int] = (),
        pli_cache_size: int = 65536,
        deadline_s: float | None = None,
    ) -> None:
        """``known_uniques`` / ``known_non_uniques`` pre-populate the
        pruning graph; DUCC-INC passes the pre-delete minimal uniques
        here to cut the lattice above them out of the search space.
        ``deadline_s`` is a cooperative wall-clock budget for the whole
        run, polled every few thousand classifications; blowing it
        raises :class:`~repro.errors.BudgetExceededError` (the paper's
        10-hour aborts, programmatically).
        """
        self._deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self._deadline_s = deadline_s
        self._relation = relation
        self._rng = random.Random(seed)
        self._n_columns = relation.n_columns
        self._universe = full_mask(self._n_columns)
        self._graph = CombinationGraph()
        # Memo of settled classifications. Implication queries against
        # the antichain graphs are the walk's hottest operation; once a
        # mask's class is known it can never change (the graphs only
        # grow), so every node pays for at most one graph query.
        self._known: dict[int, bool] = {}
        self._column_plis: dict[int, ArrayPli] = {}
        self._pli_cache: dict[int, ArrayPli] = {}
        self._pli_cache_size = pli_cache_size
        self.intersections = 0
        self.nodes_classified = 0
        for mask in known_uniques:
            self._graph.add_unique(mask)
            self._known[mask] = True
        for mask in known_non_uniques:
            self._graph.add_non_unique(mask)
            self._known[mask] = False

    # ------------------------------------------------------------------
    # Classification via PLIs
    # ------------------------------------------------------------------
    def _column_pli(self, column: int) -> ArrayPli:
        pli = self._column_plis.get(column)
        if pli is None:
            pli = ArrayPli.for_column(self._relation, column)
            self._column_plis[column] = pli
        return pli

    def _pli_of(self, mask: int) -> ArrayPli:
        cached = self._pli_cache.get(mask)
        if cached is not None:
            return cached
        columns = list(iter_bits(mask))
        if not columns:
            return ArrayPli.single_cluster(
                list(self._relation.iter_ids()), self._relation.next_tuple_id
            )
        # Grow from a cached immediate subset (typically the walk
        # parent): k dict probes instead of a cache scan.
        best_mask, best_pli = 0, None
        for column in columns:
            subset = mask & ~(1 << column)
            cached_pli = self._pli_cache.get(subset)
            if cached_pli is not None:
                best_mask, best_pli = subset, cached_pli
                break
        remaining = sorted(
            iter_bits(mask & ~best_mask),
            key=lambda column: self._column_pli(column).n_entries(),
        )
        if best_pli is None:
            current = self._column_pli(remaining[0])
            remaining = remaining[1:]
        else:
            current = best_pli
        for column in remaining:
            if not current.has_duplicates:
                break
            current = current.intersect(self._column_pli(column))
            self.intersections += 1
        if len(self._pli_cache) >= self._pli_cache_size:
            self._pli_cache.clear()
        self._pli_cache[mask] = current
        return current

    def classify(self, mask: int) -> bool:
        """True iff ``mask`` is unique; records the result for pruning."""
        known = self._known.get(mask)
        if known is not None:
            return known
        implied = self._graph.classify(mask)
        if implied is None:
            self.nodes_classified += 1
            if (
                self._deadline is not None
                and self.nodes_classified % 1024 == 0
                and time.monotonic() > self._deadline
            ):
                raise BudgetExceededError(
                    f"DUCC exceeded {self._deadline_s}s after "
                    f"{self.nodes_classified} classifications"
                )
            implied = not self._pli_of(mask).has_duplicates
            if implied:
                self._graph.add_unique(mask)
            else:
                self._graph.add_non_unique(mask)
        self._known[mask] = implied
        return implied

    # ------------------------------------------------------------------
    # Random walk
    # ------------------------------------------------------------------
    def _unvisited_neighbours(self, mask: int, upward: bool) -> list[int]:
        """Neighbours whose class is not yet *settled*.

        Implication against the graph is deliberately not queried here:
        an implied-but-unvisited neighbour is returned, visited, and
        settled by one cheap graph query inside :meth:`classify` --
        much cheaper than querying the graph for all neighbours on
        every enumeration.
        """
        neighbours = (
            immediate_supersets(mask, self._universe)
            if upward
            else immediate_subsets(mask)
        )
        known = self._known
        return [neighbour for neighbour in neighbours if neighbour not in known]

    def _random_walk(self, seed_mask: int) -> None:
        trace: list[int] = [seed_mask]
        while trace:
            node = trace[-1]
            known = self._known.get(node)
            if known is None:
                implied = self._graph.classify(node)
                if implied is not None:
                    # Implied nodes are walls: settle them with the one
                    # graph query just spent and retreat -- their whole
                    # region is already covered by a recorded border
                    # element, and completeness is guaranteed by the
                    # hole-detection fixpoint, not by walk coverage.
                    self._known[node] = implied
                    trace.pop()
                    continue
                unique = self.classify(node)
            else:
                unique = known
            candidates = self._unvisited_neighbours(node, upward=not unique)
            if candidates:
                trace.append(self._rng.choice(candidates))
            else:
                trace.pop()

    # ------------------------------------------------------------------
    # Full discovery with hole detection
    # ------------------------------------------------------------------
    def run(self) -> tuple[list[int], list[int]]:
        """Discover the exact (MUCS, MNUCS) of the relation."""
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExceededError(
                f"DUCC budget of {self._deadline_s}s already spent"
            )
        if len(self._relation) < 2:
            return [0], []
        # Seed with the single columns (DUCC starts bottom-up).
        for column in range(self._n_columns):
            self.classify(1 << column)
        seeds = [
            1 << column
            for column in range(self._n_columns)
            if not self.classify(1 << column)
        ]
        while True:
            for seed_mask in seeds:
                self._random_walk(seed_mask)
            border = self._graph.maximal_non_uniques()
            candidates = mucs_from_mnucs(border, self._n_columns)
            holes = [
                candidate for candidate in candidates if not self.classify(candidate)
            ]
            if not holes:
                return candidates, border
            seeds = holes

    def maximal_non_uniques(self) -> list[int]:
        return self._graph.maximal_non_uniques()


def discover_ducc(
    relation: Relation, seed: int = 0, deadline_s: float | None = None
) -> tuple[list[int], list[int]]:
    """Static discovery entry point (registered as ``"ducc"``)."""
    return Ducc(relation, seed=seed, deadline_s=deadline_s).run()
