"""DUCC-INC: the paper's adaptation of DUCC for delete batches.

Section V-A: "We adapted the original DUCC to deal with deletes by
providing it with previously discovered minimal uniques, removing the
subset graph above those uniques from the search space." Deletes cannot
invalidate a unique, so the old minimal uniques stay correct upper
bounds; DUCC only has to find the border *beneath* them.

The same adaptation cannot work for inserts: a-priori knowledge of
uniques that have become stale sends the bottom-up random walk into
infinite loops (as the paper reports), so :class:`DuccInc` exposes
deletes only -- inserts fall back to a full DUCC run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.baselines.ducc import Ducc
from repro.storage.relation import Relation


class DuccInc:
    """Delete-batch rediscovery seeded with the old minimal uniques."""

    def __init__(
        self,
        relation: Relation,
        mucs: Sequence[int],
        deadline_s: float | None = None,
    ) -> None:
        """``relation`` is the live relation DUCC-INC re-profiles after
        each delete batch; ``mucs`` the pre-batch minimal uniques.
        ``deadline_s`` bounds each rediscovery run."""
        self._relation = relation
        self._mucs = list(mucs)
        self._deadline_s = deadline_s

    def handle_deletes(self, tuple_ids: Iterable[int]) -> tuple[list[int], list[int]]:
        """Apply the deletes to the relation and re-profile.

        The old minimal uniques are injected as known uniques, pruning
        the lattice above them exactly as the paper describes.
        """
        for tuple_id in tuple_ids:
            self._relation.delete(tuple_id)
        mucs, mnucs = Ducc(
            self._relation,
            known_uniques=self._mucs,
            deadline_s=self._deadline_s,
        ).run()
        self._mucs = mucs
        return mucs, mnucs
