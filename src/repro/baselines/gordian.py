"""GORDIAN: prefix-tree based unique discovery (Sismanis et al., VLDB'06).

GORDIAN is row-based: it inserts every tuple into a prefix tree (one
trie level per column, leaves counting tuples), then discovers all
*maximal non-uniques* by a depth-first traversal that, at every level,
either **follows** the distinct values of the current column (the
combination keeps the column) or **merges** all children together (the
combination skips the column). A path that still holds >= 2 tuples at
the bottom witnesses a duplicate on exactly the followed columns.
Minimal uniques are computed from the maximal non-uniques at the end --
GORDIAN's well-known final conversion step -- via the transversal
duality.

Pruning (the source of GORDIAN's "early identification of non-uniques"):

* a node set carrying fewer than 2 tuples can never witness a
  duplicate: the branch dies immediately;
* if the followed columns plus *all* remaining columns are already
  contained in a discovered maximal non-unique, nothing new can be
  found below: the branch dies.

As in the paper, this is a best-effort reimplementation from the
published description; its complexity is data-dependent (exponential in
the worst case), which is exactly the behaviour the paper reports
(GORDIAN-INC aborted after 10 hours on the large configurations).
"""

from __future__ import annotations

import sys
import time
from typing import Hashable, Iterable, Sequence

from repro.errors import BudgetExceededError
from repro.lattice.antichain import MaximalAntichain, sorted_masks
from repro.lattice.transversal import mucs_from_mnucs
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]

# A trie node is a dict value -> child node; the level below the last
# column holds int tuple counts instead of dicts.
TrieNode = dict


class PrefixTree:
    """The prefix tree (trie) over full tuples, with tuple counts."""

    __slots__ = ("n_columns", "_root", "_size")

    def __init__(self, n_columns: int) -> None:
        if n_columns < 1:
            raise ValueError("prefix tree needs at least one column")
        self.n_columns = n_columns
        self._root: TrieNode = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, row: Sequence[Hashable]) -> None:
        node = self._root
        for value in row[:-1]:
            node = node.setdefault(value, {})
        last = row[-1]
        node[last] = node.get(last, 0) + 1
        self._size += 1

    def remove(self, row: Sequence[Hashable]) -> None:
        """Remove one occurrence of ``row``; prunes emptied branches."""
        path: list[tuple[TrieNode, Hashable]] = []
        node = self._root
        for value in row[:-1]:
            path.append((node, value))
            node = node[value]
        last = row[-1]
        count = node[last] - 1
        if count:
            node[last] = count
        else:
            del node[last]
            for parent, value in reversed(path):
                child = parent[value]
                if child:
                    break
                del parent[value]
        self._size -= 1

    def insert_batch(self, rows: Iterable[Sequence[Hashable]]) -> None:
        for row in rows:
            self.insert(row)

    def remove_batch(self, rows: Iterable[Sequence[Hashable]]) -> None:
        for row in rows:
            self.remove(row)

    @property
    def root(self) -> TrieNode:
        return self._root


class Gordian:
    """Discovery runs over a prefix tree.

    ``deadline_s`` is a cooperative wall-clock budget per discovery
    run: the traversal polls it every few thousand states and raises
    :class:`~repro.errors.BudgetExceededError` when blown -- the
    programmatic form of the paper's "we had to abort GORDIAN-INC
    after 10 hours".
    """

    def __init__(self, tree: PrefixTree, deadline_s: float | None = None) -> None:
        self._tree = tree
        self._deadline_s = deadline_s
        self.nodes_visited = 0

    @classmethod
    def from_relation(cls, relation: Relation) -> "Gordian":
        tree = PrefixTree(relation.n_columns)
        tree.insert_batch(relation.iter_rows())
        return cls(tree)

    @property
    def tree(self) -> PrefixTree:
        return self._tree

    def maximal_non_uniques(self, seeds: Iterable[int] = ()) -> list[int]:
        """All maximal non-uniques of the current tree contents.

        ``seeds`` pre-populates the result antichain with combinations
        already known to be non-unique (GORDIAN-INC hands over the
        pre-insert maximal non-uniques, which inserts cannot undo), so
        the traversal prunes their sub-lattices immediately.
        """
        n_columns = self._tree.n_columns
        if len(self._tree) < 2:
            return []
        found = MaximalAntichain()
        for mask in seeds:
            found.add(mask)
        # remaining_below[d] = mask of columns d .. n-1.
        remaining_below = [0] * (n_columns + 1)
        for depth in range(n_columns - 1, -1, -1):
            remaining_below[depth] = remaining_below[depth + 1] | (1 << depth)

        deadline = (
            time.monotonic() + self._deadline_s
            if self._deadline_s is not None
            else None
        )
        if deadline is not None and time.monotonic() > deadline:
            raise BudgetExceededError(
                f"GORDIAN traversal budget of {self._deadline_s}s already spent"
            )

        # Subtree tuple counts, memoized per node for this (static) run.
        last_level = n_columns - 1
        counts: dict[int, int] = {}

        def count_of(node: TrieNode, depth: int) -> int:
            if depth == last_level:
                key = id(node)
                total = counts.get(key)
                if total is None:
                    total = sum(node.values())
                    counts[key] = total
                return total
            key = id(node)
            total = counts.get(key)
            if total is None:
                total = sum(
                    count_of(child, depth + 1) for child in node.values()
                )
                counts[key] = total
            return total

        def traverse(nodes: list, depth: int, followed: int, count: int) -> None:
            """``nodes``: trie nodes (or leaf counts at depth n) whose
            tuples agree on every followed column; ``count`` their total
            tuple weight."""
            self.nodes_visited += 1
            if deadline is not None and self.nodes_visited % 4096 == 0:
                if time.monotonic() > deadline:
                    raise BudgetExceededError(
                        f"GORDIAN traversal exceeded {self._deadline_s}s "
                        f"after {self.nodes_visited} states"
                    )
            if count < 2:
                return
            if depth == n_columns:
                found.add(followed)
                return
            if found.contains_superset_of(followed | remaining_below[depth]):
                return
            # Follow branch: keep the column, split by value.
            grouped: dict[Hashable, list] = {}
            for node in nodes:
                for value, child in node.items():
                    grouped.setdefault(value, []).append(child)
            column_bit = 1 << depth
            at_last = depth == last_level
            for children in grouped.values():
                if at_last:
                    child_count = sum(children)
                else:
                    child_count = sum(
                        count_of(child, depth + 1) for child in children
                    )
                if child_count >= 2:
                    traverse(children, depth + 1, followed | column_bit, child_count)
            # Skip branch: merge all children, drop the column.
            merged: list = []
            for children in grouped.values():
                merged.extend(children)
            traverse(merged, depth + 1, followed, count)

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10 * n_columns + 1000))
        try:
            traverse([self._tree.root], 0, 0, len(self._tree))
        finally:
            sys.setrecursionlimit(old_limit)
        return sorted_masks(found)

    def run(self, seeds: Iterable[int] = ()) -> tuple[list[int], list[int]]:
        """(MUCS, MNUCS) of the current tree contents."""
        if len(self._tree) < 2:
            return [0], []
        mnucs = self.maximal_non_uniques(seeds)
        mucs = mucs_from_mnucs(mnucs, self._tree.n_columns)
        return mucs, mnucs


def discover_gordian(relation: Relation) -> tuple[list[int], list[int]]:
    """Static discovery entry point (registered as ``"gordian"``)."""
    return Gordian.from_relation(relation).run()
