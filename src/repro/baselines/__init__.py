"""Baseline systems the paper compares SWAN against.

* :mod:`repro.baselines.bruteforce` -- exact oracle via pairwise agree
  sets (test ground truth).
* :mod:`repro.baselines.gordian` -- GORDIAN [Sismanis et al., VLDB'06]:
  prefix-tree (trie) based maximal non-unique discovery, best-effort
  reimplementation as in the paper.
* :mod:`repro.baselines.gordian_inc` -- GORDIAN-INC: the paper's
  incremental adaptation (trie insert/delete + seeded rediscovery).
* :mod:`repro.baselines.ducc` -- DUCC [Heise et al., PVLDB'13]:
  random-walk lattice traversal over PLIs with hole detection.
* :mod:`repro.baselines.ducc_inc` -- DUCC-INC: the paper's adaptation
  for deletes (search space pruned above the old minimal uniques).
* :mod:`repro.baselines.hca` -- HCA [Abedjan & Naumann, CIKM'11]:
  levelwise bottom-up discovery with cardinality-based pruning.
* :mod:`repro.baselines.dbms` -- the DBMS-X simulation: per-constraint
  validation of inserts, no discovery (paper Fig. 1c footnote).
"""

from repro.baselines.bruteforce import discover_bruteforce
from repro.baselines.ducc import Ducc, discover_ducc
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian import Gordian, discover_gordian
from repro.baselines.gordian_inc import GordianInc
from repro.baselines.hca import discover_hca

__all__ = [
    "Ducc",
    "DuccInc",
    "Gordian",
    "GordianInc",
    "discover_bruteforce",
    "discover_ducc",
    "discover_gordian",
    "discover_hca",
]
