"""DBMS-X simulation: constraint validation without discovery.

The paper's Fig. 1c includes a commercial DBMS that "only checks whether
new tuples violate the predefined set of 268 minimal uniques, i.e.,
DBMS-X does not discover new constraints" (footnote 2). This module
reproduces that system's *behaviour*: one multi-column hash index per
declared unique constraint, every inserted tuple validated against all
of them, and the statement aborted (rolled back) on the first violation
-- the standard INSERT-under-UNIQUE-constraint semantics.

It intentionally does *not* find new uniques or maintain non-uniques;
benchmarks time its per-batch validation cost against SWAN's full
discovery cost, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.lattice.combination import columns_of
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


@dataclass
class ValidationReport:
    """Outcome of one insert batch against the declared constraints."""

    accepted: int = 0
    rejected: int = 0
    violations: list[tuple[int, int]] = field(default_factory=list)
    """(row position in batch, violated constraint mask) pairs."""


class DbmsConstraintChecker:
    """Per-constraint hash indexes validating every inserted tuple."""

    def __init__(self, relation: Relation, constraints: Sequence[int]) -> None:
        """Declare ``constraints`` (unique column masks) on ``relation``
        and build their indexes, as a DBMS does on ALTER TABLE ADD
        UNIQUE."""
        self._constraints = [
            (mask, columns_of(mask)) for mask in constraints if mask
        ]
        self._indexes: dict[int, set[Row]] = {mask: set() for mask, _ in self._constraints}
        for row in relation.iter_rows():
            for mask, indices in self._constraints:
                self._indexes[mask].add(tuple(row[index] for index in indices))

    @property
    def n_constraints(self) -> int:
        return len(self._constraints)

    def insert_batch(
        self,
        rows: Sequence[Sequence[Hashable]],
        enforce: bool = True,
    ) -> ValidationReport:
        """Validate (and index) a batch tuple by tuple.

        With ``enforce=True`` a violating tuple is rejected and leaves
        no trace (per-statement rollback); with ``enforce=False`` the
        batch is appended without any checks -- the paper's "no
        constraints defined" mode that needed only 120 ms.
        """
        report = ValidationReport()
        for position, raw_row in enumerate(rows):
            row = tuple(raw_row)
            if not enforce:
                report.accepted += 1
                continue
            projections: list[tuple[int, Row]] = []
            violated: int | None = None
            for mask, indices in self._constraints:
                key = tuple(row[index] for index in indices)
                if key in self._indexes[mask]:
                    violated = mask
                    break
                projections.append((mask, key))
            if violated is None:
                for mask, key in projections:
                    self._indexes[mask].add(key)
                report.accepted += 1
            else:
                report.rejected += 1
                report.violations.append((position, violated))
        if not enforce:
            return report
        return report

    def delete_batch(self, rows: Sequence[Sequence[Hashable]]) -> None:
        """Drop index entries for deleted tuples (constraint upkeep)."""
        for raw_row in rows:
            row = tuple(raw_row)
            for mask, indices in self._constraints:
                self._indexes[mask].discard(tuple(row[index] for index in indices))

    def __repr__(self) -> str:
        return f"DbmsConstraintChecker(constraints={len(self._constraints)})"
