"""HCA: levelwise bottom-up unique discovery (Abedjan & Naumann, CIKM'11).

HCA ascends the lattice level by level. Level k candidates come from an
apriori-style join of the level k-1 *non-uniques* (a minimal unique of
size k can only have non-unique subsets), then each candidate is
verified -- unless statistics decide first:

* **cardinality product pruning**: the distinct count of a combination
  is at most the product of its columns' distinct counts; if that
  product is below the row count the candidate is non-unique without
  looking at data;
* **cardinality lower bound**: the distinct count is at least the
  maximum column cardinality; HCA tracks exact combination counts while
  verifying and reuses them as bounds one level up.

Verification counts distinct projections directly (HCA predates the
PLI-style engines). Maximal non-uniques follow from the minimal uniques
by duality at the end.
"""

from __future__ import annotations

from repro.lattice.combination import columns_of, minimize
from repro.lattice.enumeration import apriori_gen
from repro.lattice.transversal import mnucs_from_mucs
from repro.storage.relation import Relation


def discover_hca(relation: Relation) -> tuple[list[int], list[int]]:
    """Static discovery entry point (registered as ``"hca"``)."""
    n_rows = len(relation)
    n_columns = relation.n_columns
    if n_rows < 2:
        return [0], []

    distinct_counts: dict[int, int] = {}

    def distinct_count(mask: int) -> int:
        count = distinct_counts.get(mask)
        if count is None:
            seen = set()
            indices = columns_of(mask)
            for row in relation.iter_rows():
                seen.add(tuple(row[index] for index in indices))
            count = len(seen)
            distinct_counts[mask] = count
        return count

    mucs: list[int] = []
    level_non_uniques: list[int] = []
    for column in range(n_columns):
        mask = 1 << column
        if distinct_count(mask) == n_rows:
            mucs.append(mask)
        else:
            level_non_uniques.append(mask)

    size = 2
    while level_non_uniques and size <= n_columns:
        candidates = apriori_gen(level_non_uniques, size)
        next_non_uniques: list[int] = []
        for candidate in candidates:
            # Cardinality product upper bound: provably non-unique?
            product = 1
            for column in columns_of(candidate):
                product *= distinct_counts[1 << column]
                if product >= n_rows:
                    break
            if product < n_rows:
                next_non_uniques.append(candidate)
                continue
            if distinct_count(candidate) == n_rows:
                mucs.append(candidate)
            else:
                next_non_uniques.append(candidate)
        level_non_uniques = next_non_uniques
        size += 1

    mucs = minimize(mucs)
    return mucs, mnucs_from_mucs(mucs, n_columns)
