"""Brute-force discovery oracles.

Two exact strategies, both used as ground truth in tests:

* :func:`discover_bruteforce` -- pairwise agree sets. The maximal
  non-uniques of a relation are exactly the maximal agree sets over all
  tuple pairs, and the minimal uniques follow by transversal duality.
  Quadratic in rows, linear in columns: the right oracle shape for
  small-to-medium test relations with many columns.
* :func:`discover_lattice_scan` -- classify every one of the 2^n
  combinations by scanning. Exponential in columns; used only to
  cross-check the agree-set oracle itself on tiny inputs.
"""

from __future__ import annotations

from repro.lattice.combination import full_mask, maximize
from repro.lattice.transversal import mucs_from_mnucs
from repro.profiling.verify import agree_set
from repro.storage.relation import Relation


def discover_bruteforce(relation: Relation) -> tuple[list[int], list[int]]:
    """Exact (MUCS, MNUCS) via pairwise agree sets."""
    rows = list(relation.iter_rows())
    n_columns = relation.n_columns
    if len(rows) < 2:
        # With at most one tuple even the empty combination is unique.
        return [0], []
    agree_sets: set[int] = set()
    universe = full_mask(n_columns)
    for left_index, left in enumerate(rows):
        for right in rows[left_index + 1 :]:
            mask = agree_set(left, right)
            agree_sets.add(mask)
            if mask == universe:
                # Two identical rows: nothing can be unique.
                return [], [universe]
    mnucs = maximize(agree_sets)
    mucs = mucs_from_mnucs(mnucs, n_columns)
    return mucs, mnucs


def discover_lattice_scan(relation: Relation) -> tuple[list[int], list[int]]:
    """Exact (MUCS, MNUCS) by classifying all 2^n combinations."""
    n_columns = relation.n_columns
    if n_columns > 20:
        raise ValueError("lattice scan is exponential; use <= 20 columns")
    universe = full_mask(n_columns)
    unique: dict[int, bool] = {}
    for mask in range(universe + 1):
        unique[mask] = not relation.duplicate_exists(mask)
    mucs = [
        mask
        for mask in range(universe + 1)
        if unique[mask]
        and all(not unique[mask & ~(1 << bit)] for bit in range(n_columns) if mask >> bit & 1)
    ]
    mnucs = [
        mask
        for mask in range(universe + 1)
        if not unique[mask]
        and all(
            unique[mask | (1 << bit)] for bit in range(n_columns) if not mask >> bit & 1
        )
    ]
    return sorted(mucs), sorted(mnucs)
