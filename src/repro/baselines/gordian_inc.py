"""GORDIAN-INC: the paper's incremental adaptation of GORDIAN.

Following Section V-A: GORDIAN keeps its prefix tree alive between
batches. For *inserts* it is handed the previously discovered maximal
non-uniques (inserts cannot invalidate a non-unique), adds the new
tuples to the tree and re-runs the seeded traversal plus the MNUC->MUC
conversion. For *deletes* the old maximal non-uniques may no longer
hold, so after removing the tuples from the tree the traversal restarts
unseeded.

The paper measures only the incremental work (tree maintenance +
rediscovery), never the initial tree construction; this class mirrors
that by building the tree once in the constructor.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.baselines.gordian import Gordian, PrefixTree
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


class GordianInc:
    """A long-lived GORDIAN instance processing insert/delete batches."""

    def __init__(
        self,
        relation: Relation,
        mnucs: Sequence[int],
        deadline_s: float | None = None,
    ) -> None:
        """``mnucs``: the maximal non-uniques of the initial relation
        (from any holistic run), handed over as in the paper.
        ``deadline_s`` bounds each rediscovery run (see
        :class:`~repro.baselines.gordian.Gordian`)."""
        tree = PrefixTree(relation.n_columns)
        tree.insert_batch(relation.iter_rows())
        self._gordian = Gordian(tree, deadline_s=deadline_s)
        self._mnucs = list(mnucs)

    @property
    def tree(self) -> PrefixTree:
        return self._gordian.tree

    def handle_inserts(
        self, rows: Sequence[Sequence[Hashable]]
    ) -> tuple[list[int], list[int]]:
        """Add a batch to the tree; rediscover seeded with old MNUCS."""
        self.tree.insert_batch(rows)
        mucs, mnucs = self._gordian.run(seeds=self._mnucs)
        self._mnucs = mnucs
        return mucs, mnucs

    def handle_deletes(
        self, rows: Sequence[Sequence[Hashable]]
    ) -> tuple[list[int], list[int]]:
        """Remove a batch from the tree; rediscover without seeds.

        GORDIAN-INC "cannot use the previously discovered maximal
        non-uniques, as they may not be correct after the delete".
        """
        self.tree.remove_batch(rows)
        mucs, mnucs = self._gordian.run()
        self._mnucs = mnucs
        return mucs, mnucs
