"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the profiler with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference does not resolve."""


class UnknownColumnError(SchemaError):
    """A column name or index does not exist in the schema."""

    def __init__(self, column: object, available: object = None) -> None:
        message = f"unknown column: {column!r}"
        if available is not None:
            message += f" (available: {available!r})"
        super().__init__(message)
        self.column = column


class TupleIdError(ReproError):
    """A tuple ID does not exist (or was already deleted)."""


class ArityError(ReproError):
    """A tuple's arity does not match the relation's schema."""


class ProfileStateError(ReproError):
    """The profiler was used in an invalid order.

    For example, calling :meth:`SwanProfiler.handle_inserts` before the
    initial profile was computed.
    """


class InconsistentProfileError(ReproError):
    """A repository sanity check failed (MUCS/MNUCS not antichains, ...)."""


class AlgorithmError(ReproError):
    """A discovery algorithm violated one of its internal invariants."""


class WorkloadError(ReproError):
    """A benchmark workload specification is invalid."""


class ChangelogCorruptionError(ReproError):
    """A write-ahead changelog file failed validation.

    Raised when a record frame's checksum does not match, sequence
    numbers are non-contiguous, or the file header is damaged. A torn
    *tail* (the writer died mid-append) is expected after a crash and
    handled by truncation; this error means damage a reader refused to
    skip over.
    """


class RecoveryError(ReproError):
    """Crash recovery could not re-attach a profiler.

    Raised when every snapshot fails validation (or none exists) and no
    holistic fallback was provided, so the service state cannot be
    reconstructed. Individual snapshot load failures surface as this
    error too; the recovery path catches them and falls back to older
    snapshots before giving up.
    """


class ServiceHealthError(ReproError):
    """The profiling service refused an operation in its current health.

    Raised when a mutating batch reaches a service whose health state
    is READ_ONLY (the changelog append path exhausted its retries, so
    durability cannot be guaranteed) or FAILED (the profile could not
    be trusted or rebuilt). Queries and status remain available; a
    restart recovers from durable state and resets health.
    """


class TenantError(ReproError):
    """Base class for multi-tenant front-end errors.

    Everything the :class:`~repro.tenants.TenantManager` or the HTTP
    layer raises about tenant lifecycle or admission derives from this,
    so the server can map the whole family onto structured JSON error
    responses with one ``except``.
    """


class UnknownTenantError(TenantError):
    """A tenant id does not exist in the manager's registry."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant: {tenant_id!r}")
        self.tenant_id = tenant_id


class TenantExistsError(TenantError):
    """A tenant id is already registered (create collided)."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"tenant already exists: {tenant_id!r}")
        self.tenant_id = tenant_id


class TenantModeError(TenantError):
    """A batch conflicts with the tenant's registered mode.

    Raised when a delete batch reaches a tenant registered with
    ``insert_only=True`` (the insert-only vs insert+delete dichotomy:
    append-only tenants trade delete support for cheaper maintenance).
    """


class QueueFullError(TenantError):
    """A tenant's bounded ingest queue rejected a batch (backpressure).

    Admission control: once ``max_pending_batches`` or
    ``max_pending_bytes`` is reached, new batches are rejected with
    this error -- the HTTP layer turns it into ``429 Too Many
    Requests`` -- instead of letting a slow tenant grow memory without
    bound. The limits that were hit ride along for the error payload.
    """

    def __init__(
        self,
        tenant_id: str,
        pending_batches: int,
        pending_bytes: int,
        max_pending_batches: int,
        max_pending_bytes: int,
    ) -> None:
        super().__init__(
            f"tenant {tenant_id!r} ingest queue is full: "
            f"{pending_batches} batch(es) / {pending_bytes} byte(s) pending "
            f"(limits: {max_pending_batches} batches, "
            f"{max_pending_bytes} bytes)"
        )
        self.tenant_id = tenant_id
        self.pending_batches = pending_batches
        self.pending_bytes = pending_bytes
        self.max_pending_batches = max_pending_batches
        self.max_pending_bytes = max_pending_bytes


class FlushTimeoutError(TenantError):
    """A drain deadline expired with batches still queued.

    Raised instead of silently acknowledging a stop/drop whose queue
    never emptied: the caller asked for "all admitted batches applied"
    and did not get it, so the answer must be an error (HTTP 504), not
    a quiet ``True``. The number of batches left behind rides along.
    """

    def __init__(self, tenant_id: str, pending_batches: int) -> None:
        super().__init__(
            f"tenant {tenant_id!r} did not drain before the deadline: "
            f"{pending_batches} batch(es) still queued"
        )
        self.tenant_id = tenant_id
        self.pending_batches = pending_batches


class TenantParkedError(TenantError):
    """The tenant is PARKED: automatic recovery gave up on it.

    The supervisor exhausted the restart budget (or startup
    reconciliation found registry/state-dir divergence) and parked the
    tenant with a persisted reason record. Parked tenants refuse all
    traffic until an operator intervenes (``POST .../recover`` or
    ``DELETE``); the HTTP layer maps this to ``503 tenant_parked``.
    """

    def __init__(self, tenant_id: str, reason: str) -> None:
        super().__init__(f"tenant {tenant_id!r} is parked: {reason}")
        self.tenant_id = tenant_id
        self.reason = reason


class TenantRecoveringError(TenantError):
    """The tenant's circuit breaker is open: recovery is in flight.

    The supervisor is tearing the tenant down and re-opening it from
    durable state; accepting writes mid-restart would race the rebuild.
    The HTTP layer maps this to ``503 tenant_recovering`` with a
    ``Retry-After`` hint so clients back off instead of hammering.
    """

    def __init__(self, tenant_id: str, retry_after: float = 1.0) -> None:
        super().__init__(
            f"tenant {tenant_id!r} is recovering; retry in {retry_after:g}s"
        )
        self.tenant_id = tenant_id
        self.retry_after = retry_after


class BudgetExceededError(ReproError):
    """A discovery run exceeded its cooperative time budget.

    The benchmark harness hands long-running baselines a deadline;
    they poll it periodically and raise this instead of running
    unbounded (the paper's equivalent: aborting GORDIAN-INC after 10
    hours)."""
