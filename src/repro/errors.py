"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the profiler with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference does not resolve."""


class UnknownColumnError(SchemaError):
    """A column name or index does not exist in the schema."""

    def __init__(self, column: object, available: object = None) -> None:
        message = f"unknown column: {column!r}"
        if available is not None:
            message += f" (available: {available!r})"
        super().__init__(message)
        self.column = column


class TupleIdError(ReproError):
    """A tuple ID does not exist (or was already deleted)."""


class ArityError(ReproError):
    """A tuple's arity does not match the relation's schema."""


class ProfileStateError(ReproError):
    """The profiler was used in an invalid order.

    For example, calling :meth:`SwanProfiler.handle_inserts` before the
    initial profile was computed.
    """


class InconsistentProfileError(ReproError):
    """A repository sanity check failed (MUCS/MNUCS not antichains, ...)."""


class AlgorithmError(ReproError):
    """A discovery algorithm violated one of its internal invariants."""


class WorkloadError(ReproError):
    """A benchmark workload specification is invalid."""


class ChangelogCorruptionError(ReproError):
    """A write-ahead changelog file failed validation.

    Raised when a record frame's checksum does not match, sequence
    numbers are non-contiguous, or the file header is damaged. A torn
    *tail* (the writer died mid-append) is expected after a crash and
    handled by truncation; this error means damage a reader refused to
    skip over.
    """


class RecoveryError(ReproError):
    """Crash recovery could not re-attach a profiler.

    Raised when every snapshot fails validation (or none exists) and no
    holistic fallback was provided, so the service state cannot be
    reconstructed. Individual snapshot load failures surface as this
    error too; the recovery path catches them and falls back to older
    snapshots before giving up.
    """


class ServiceHealthError(ReproError):
    """The profiling service refused an operation in its current health.

    Raised when a mutating batch reaches a service whose health state
    is READ_ONLY (the changelog append path exhausted its retries, so
    durability cannot be guaranteed) or FAILED (the profile could not
    be trusted or rebuilt). Queries and status remain available; a
    restart recovers from durable state and resets health.
    """


class BudgetExceededError(ReproError):
    """A discovery run exceeded its cooperative time budget.

    The benchmark harness hands long-running baselines a deadline;
    they poll it periodically and raise this instead of running
    unbounded (the paper's equivalent: aborting GORDIAN-INC after 10
    hours)."""
