"""Legacy setup shim: this offline environment ships setuptools without
the ``wheel`` package, so editable installs go through
``pip install -e . --no-build-isolation --no-use-pep517`` which needs a
``setup.py``. All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
