#!/usr/bin/env python3
"""Splice a generated benchmark report into EXPERIMENTS.md.

Usage: python tools/splice_experiments.py bench_results/report.md

Replaces the block between the MEASURED RESULTS markers with the
report's figure sections, keeping the hand-written analysis around it.
"""

import re
import sys
from pathlib import Path

START = "<!-- MEASURED RESULTS START -->"
END = "<!-- MEASURED RESULTS END -->"


def main() -> int:
    report_path = Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results/report.md")
    experiments_path = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    report = report_path.read_text()
    experiments = experiments_path.read_text()
    if START not in experiments or END not in experiments:
        raise SystemExit("EXPERIMENTS.md is missing the splice markers")
    spliced = re.sub(
        re.escape(START) + r".*?" + re.escape(END),
        START + "\n\n" + report.strip() + "\n\n" + END,
        experiments,
        flags=re.DOTALL,
    )
    experiments_path.write_text(spliced)
    print(f"spliced {report_path} into {experiments_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
