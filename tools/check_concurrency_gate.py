#!/usr/bin/env python
"""Fail CI if the concurrency gate stops catching its seeded bugs.

The R7/R9 fixtures under ``tests/lint/fixtures`` preserve two real bug
shapes -- the inverted queue-vs-manager lock order and the PR 8
PartitionCache fork-lock deadlock. The gate is only trustworthy while
it still *fails* on them: a refactor of :mod:`repro.lint.interproc`
that silently stops resolving the call chains involved would leave the
rules installed but blind. This script re-lints each fixture with its
rule selected and demands findings with the matching rule id, exiting
1 (and saying why) when a fixture no longer trips its rule.

Run from the repo root::

    PYTHONPATH=src python tools/check_concurrency_gate.py
"""

from __future__ import annotations

import os
import sys

from repro.lint.config import LintConfig
from repro.lint.engine import run_lint

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# fixture path -> rule id that must fire there
SEEDED = {
    "tests/lint/fixtures/r7_inverted_lock_order.py": "R7",
    "tests/lint/fixtures/pr8_fork_lock_bug.py": "R9",
}


def main() -> int:
    failures = 0
    for fixture, rule_id in sorted(SEEDED.items()):
        config = LintConfig(baseline=None, exclude=())
        # Fixtures live outside the rules' ``repro.*`` default scope;
        # widen the selected rule to every module for this check.
        config.rule(rule_id).include = ("",)
        result = run_lint(
            [fixture], ROOT, config, baseline=None, select={rule_id}
        )
        fired = [f for f in result.findings if f.rule == rule_id]
        if result.parse_errors:
            print(
                f"FAIL {fixture}: parse errors {result.parse_errors}",
                file=sys.stderr,
            )
            failures += 1
        elif not fired:
            print(
                f"FAIL {fixture}: rule {rule_id} no longer fires on the "
                f"seeded bug -- the concurrency gate has rotted",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"ok   {fixture}: {rule_id} fired {len(fired)} finding(s)")
    if failures:
        return 1
    print("concurrency gate intact: every seeded bug is still detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
