#!/usr/bin/env python3
"""SWAN as a holistic profiler: split static + increment beats one run.

Section V-C of the paper shows that a *static* dataset can be profiled
faster by splitting it into an initial part (profiled holistically)
plus an increment (processed by SWAN) -- and that the split lets DUCC
reach dataset sizes it cannot process alone. This example reproduces
that effect at laptop scale on TPC-H lineitem:

* profile the full dataset with DUCC alone, and
* profile 80% with DUCC, then feed the remaining 20% through SWAN,

verifying both give identical results.

Run:  python examples/holistic_profiling.py
"""

import time

from repro import Relation, SwanProfiler
from repro.baselines.ducc import discover_ducc
from repro.datasets.tpch import lineitem_relation


def main() -> None:
    n_rows = 4000
    print(f"generating TPC-H lineitem with {n_rows} rows ...")
    relation = lineitem_relation(n_rows, seed=3)
    rows = list(relation.iter_rows())
    split = int(n_rows * 0.8)

    print("\n(1) holistic DUCC over the full dataset")
    full = Relation.from_rows(relation.schema, rows)
    started = time.perf_counter()
    full_mucs, full_mnucs = discover_ducc(full)
    holistic_time = time.perf_counter() - started
    print(f"    {len(full_mucs)} minimal uniques in {holistic_time:.2f}s")

    print(f"\n(2) DUCC over {split} rows, SWAN over the remaining {n_rows - split}")
    initial = Relation.from_rows(relation.schema, rows[:split])
    started = time.perf_counter()
    profiler = SwanProfiler.profile(initial, algorithm="ducc", maintain_plis=False)
    static_time = time.perf_counter() - started
    started = time.perf_counter()
    profile = profiler.handle_inserts(rows[split:])
    increment_time = time.perf_counter() - started
    combined_time = static_time + increment_time
    print(
        f"    static part {static_time:.2f}s + increment {increment_time:.2f}s "
        f"= {combined_time:.2f}s"
    )

    assert sorted(profile.mucs) == sorted(full_mucs)
    assert sorted(profile.mnucs) == sorted(full_mnucs)
    print("\nboth strategies report identical profiles")
    if combined_time < holistic_time:
        print(
            f"split profiling was {holistic_time / combined_time:.2f}x faster "
            "than the single holistic run (the paper's Fig. 5/6 effect)"
        )
    else:
        print(
            "holistic was faster at this scale; raise n_rows to see the "
            "split win (the crossover the paper's Fig. 6 shows)"
        )


if __name__ == "__main__":
    main()
