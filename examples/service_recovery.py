#!/usr/bin/env python3
"""The profiling service surviving a crash.

Process 1 boots a ProfilingService over a durable state directory,
drains a spool of batch files (each committed to the write-ahead
changelog before it is applied), then "crashes" -- no clean stop, and
a half-written record is left torn at the changelog tail.

Process 2 simply starts a service over the same directory: it loads the
newest snapshot, discards the torn bytes, replays the committed suffix,
and continues profiling exactly where the first process left off -- no
holistic re-run.

Run:  python examples/service_recovery.py
"""

import os
import shutil
import tempfile

from repro import ProfilingService, Relation, Schema, ServiceConfig
from repro.service.server import CHANGELOG_NAME, SpoolDirectorySource


def show(tag: str, service: ProfilingService) -> None:
    profiler = service.profiler
    mucs = ", ".join(str(combo) for combo in profiler.minimal_uniques())
    print(f"{tag}: {len(profiler.relation)} rows | minimal uniques: {mucs}")


def main() -> None:
    base = tempfile.mkdtemp(prefix="swan-service-")
    state = os.path.join(base, "state")
    spool = os.path.join(base, "spool")

    relation = Relation.from_rows(
        Schema(["Name", "Phone", "Age"]),
        [
            ("Lee", "345", "20"),
            ("Payne", "245", "30"),
            ("Lee", "234", "30"),
        ],
    )
    for name, body in [
        ("001.json", {"kind": "insert", "rows": [["Payne", "245", "31"]]}),
        ("002.json", {"kind": "delete", "ids": [0]}),
    ]:
        SpoolDirectorySource.write_batch(spool, name, body)

    print("(process 1) first boot: holistic profile + seq-0 snapshot")
    service = ProfilingService(
        state, config=ServiceConfig(algorithm="ducc", watches=(("Phone",),))
    )
    service.on_event(lambda event: print(f"  monitor: {event}"))
    service.start(initial=relation)
    show("  after bootstrap", service)

    applied = service.serve(SpoolDirectorySource(spool))
    show(f"  after draining {applied} spool batches", service)
    expected = service.profiler.snapshot()

    # Crash: no service.stop(). To make it interesting, also tear a
    # half-written record onto the changelog tail.
    log_path = os.path.join(state, CHANGELOG_NAME)
    with open(log_path, "ab") as handle:
        handle.write(b"\x99\x00\x00\x00torn-half-record")
    del service  # the dead process takes its directory lock with it
    print("\n(crash) process killed mid-write; changelog tail is torn\n")

    print("(process 2) restart: recover instead of re-profiling")
    revived = ProfilingService(state, config=ServiceConfig(algorithm="ducc"))
    revived.start()
    result = revived.last_recovery
    print(
        f"  recovered via {result.source}: snapshot seq {result.snapshot_seq}, "
        f"replayed {result.replayed_records} record(s), discarded "
        f"{result.torn_bytes_discarded} torn byte(s)"
    )
    show("  after recovery", revived)

    profile = revived.profiler.snapshot()
    assert sorted(profile.mucs) == sorted(expected.mucs)
    assert sorted(profile.mnucs) == sorted(expected.mnucs)
    print("  profile identical to the pre-crash live profile")
    print(f"  watches restored: {revived.monitor.watched_labels()}")

    revived.apply_insert_batch([("Ada", "111", "9")])
    show("  after one more live batch", revived)
    revived.stop()
    shutil.rmtree(base)
    print("\ndone: the service picked up exactly where the crash left it")


if __name__ == "__main__":
    main()
