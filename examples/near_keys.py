#!/usr/bin/env python3
"""Near-key (approximate unique) discovery for data cleaning.

A column that is unique except for a handful of rows is usually a dirty
key, not a non-key. This example plants three duplicate registration
numbers into an otherwise key-like column and shows how

* exact discovery (budget 0) rejects the column,
* approximate discovery (budget 3) recovers it as a near-key, and
* the profiler's ``approximation_degree`` quantifies exactly how dirty
  a watched key is.

Run:  python examples/near_keys.py
"""

import random

from repro import Relation, Schema, SwanProfiler
from repro.profiling.approximate import discover_approximate_uniques


def main() -> None:
    rng = random.Random(5)
    schema = Schema(["reg_num", "name", "office"])
    rows = [
        (f"r{i:04d}", f"name{rng.randrange(60)}", f"office{rng.randrange(5)}")
        for i in range(400)
    ]
    # A bad ETL run duplicated three registration numbers.
    for victim in (17, 118, 301):
        dirty = list(rows[victim])
        dirty[1] = f"name{rng.randrange(60)}"
        rows.append(tuple(dirty))
    relation = Relation.from_rows(schema, rows)
    reg_mask = schema.mask(["reg_num"])

    exact_mucs, __ = discover_approximate_uniques(relation, 0)
    print(f"exact minimal uniques: "
          f"{[str(schema.combination(m)) for m in exact_mucs]}")
    assert reg_mask not in exact_mucs, "reg_num is (exactly) not a key"

    near_mucs, __ = discover_approximate_uniques(relation, 3)
    print(f"3-approximate minimal uniques: "
          f"{[str(schema.combination(m)) for m in near_mucs]}")
    assert reg_mask in near_mucs
    print("-> reg_num is a near-key: it would be unique after removing "
          "3 rows\n")

    profiler = SwanProfiler.profile(relation, algorithm="ducc")
    degree = profiler.approximation_degree(["reg_num"])
    print(f"approximation degree of reg_num: {degree} (the planted dirt)")
    assert degree == 3

    # Clean the duplicates through the incremental path and re-check.
    doomed = [400, 401, 402]
    profiler.handle_deletes(doomed)
    print(f"after deleting the 3 dirty rows: reg_num unique? "
          f"{profiler.is_unique(['reg_num'])}")
    assert profiler.is_unique(["reg_num"])


if __name__ == "__main__":
    main()
