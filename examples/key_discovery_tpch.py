#!/usr/bin/env python3
"""Candidate-key discovery on TPC-H lineitem, engine by engine.

Runs every static discovery engine in the library (brute force,
GORDIAN, DUCC, HCA) over the same generated lineitem relation, checks
they agree, times them, and prints the discovered candidate keys --
including the textbook (l_orderkey, l_linenumber) key.

Run:  python examples/key_discovery_tpch.py
"""

import time

from repro import discover
from repro.datasets.tpch import lineitem_relation
from repro.profiling.verify import verify_profile


def main() -> None:
    n_rows = 1500
    print(f"generating TPC-H lineitem with {n_rows} rows ...")
    relation = lineitem_relation(n_rows, seed=7)
    schema = relation.schema

    reference = None
    for algorithm in ("bruteforce", "gordian", "ducc", "hca"):
        started = time.perf_counter()
        mucs, mnucs = discover(relation, algorithm)
        elapsed = time.perf_counter() - started
        print(
            f"{algorithm:>10}: {len(mucs)} minimal uniques, "
            f"{len(mnucs)} maximal non-uniques in {elapsed:.2f}s"
        )
        if reference is None:
            reference = (mucs, mnucs)
            verify_profile(relation, mucs, mnucs, exhaustive=True)
            print("            (verified exhaustively against the data)")
        else:
            assert (mucs, mnucs) == reference, f"{algorithm} disagrees!"

    mucs, _ = reference
    order_line = schema.mask(["l_orderkey", "l_linenumber"])
    print("\nsmallest candidate keys:")
    for mask in mucs[:8]:
        marker = "   <- the TPC-H primary key" if mask == order_line else ""
        print(f"  {schema.combination(mask)}{marker}")
    assert order_line in mucs, "(l_orderkey, l_linenumber) must be a key"


if __name__ == "__main__":
    main()
