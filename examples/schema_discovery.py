#!/usr/bin/env python3
"""Schema discovery across relations: keys + INDs = foreign keys.

The paper's introduction positions unique discovery as the data-driven
way to find candidate keys; the related work ties it to inclusion
dependency discovery. Put together they reconstruct a schema's
relationships from raw data. This example takes the generated TPC-H
pair (lineitem, orders) with all constraints forgotten and rediscovers:

1. the candidate keys of both tables (unique discovery);
2. the unary inclusion dependencies from lineitem into orders;
3. the lineitem -> orders foreign key (an IND into a key);
4. the composite key of lineitem via an n-ary IND check.

Run:  python examples/schema_discovery.py
"""

from repro import discover
from repro.datasets.tpch import tpch_tables
from repro.ind import discover_unary_inds, foreign_key_candidates, holds_nary
from repro.ind.unary import rank_foreign_keys


def main() -> None:
    lineitem, orders = tpch_tables(1200, seed=13)
    print(
        f"lineitem: {len(lineitem)} rows x {lineitem.n_columns} cols; "
        f"orders: {len(orders)} rows x {orders.n_columns} cols\n"
    )

    print("candidate keys of orders (DUCC):")
    order_mucs, __ = discover(orders, "ducc")
    for mask in order_mucs[:5]:
        print(f"  {orders.schema.combination(mask)}")
    orderkey_mask = orders.schema.mask(["o_orderkey"])
    assert orderkey_mask in order_mucs, "o_orderkey must be a key"

    print("\nsmallest candidate keys of lineitem (DUCC):")
    lineitem_mucs, __ = discover(lineitem, "ducc")
    for mask in lineitem_mucs[:4]:
        print(f"  {lineitem.schema.combination(mask)}")
    pk = lineitem.schema.mask(["l_orderkey", "l_linenumber"])
    assert pk in lineitem_mucs

    print("\nunary INDs lineitem -> orders:")
    inds = discover_unary_inds(
        lineitem, orders, name="lineitem", other_name="orders"
    )
    for ind in inds:
        print(f"  {ind.named(lineitem.schema, orders.schema)}")

    print("\nforeign-key candidates ranked by key coverage:")
    fk = foreign_key_candidates(
        lineitem, orders, fact_name="lineitem", dimension_name="orders"
    )
    ranked = rank_foreign_keys(lineitem, orders, fk)
    for ind, coverage in ranked:
        print(
            f"  {ind.named(lineitem.schema, orders.schema):<48} "
            f"coverage {coverage:6.1%}"
        )
    best, best_coverage = ranked[0]
    assert lineitem.schema.names[best.lhs] == "l_orderkey"
    assert orders.schema.names[best.rhs] == "o_orderkey"
    assert best_coverage == 1.0
    print(
        "  -> top-ranked candidate is the true FK "
        "(accidental small-domain INDs rank at the bottom)"
    )

    # A composite n-ary check: (l_orderkey, l_shipdate) is NOT included
    # in (o_orderkey, o_orderdate) -- ship dates differ from order
    # dates -- while the unary parts may individually hold.
    lhs = tuple(
        lineitem.schema.index_of(name) for name in ("l_orderkey", "l_shipdate")
    )
    rhs = tuple(
        orders.schema.index_of(name) for name in ("o_orderkey", "o_orderdate")
    )
    assert not holds_nary(lineitem, lhs, orders, rhs)
    print(
        "\nn-ary check: lineitem[l_orderkey, l_shipdate] ⊄ "
        "orders[o_orderkey, o_orderdate] (as expected)"
    )
    print("\nschema relationships rediscovered from data alone")


if __name__ == "__main__":
    main()
