#!/usr/bin/env python3
"""Persisting a profile across process restarts.

A profiling run is expensive; its result is not. This example profiles
a TPC-H lineitem relation once, saves the profile to JSON, then
simulates a fresh process: the relation is reloaded (here: regenerated
deterministically), the stored profile re-attached, and SWAN continues
handling batches without any holistic re-run -- even after the schema's
column order changed, since profiles are stored by column name.

Run:  python examples/profile_persistence.py
"""

import os
import tempfile
import time

from repro import Relation, Schema, SwanProfiler
from repro.datasets.tpch import lineitem_relation
from repro.profiling.persistence import dump_profile, load_profile


def main() -> None:
    n_rows = 1500
    print(f"(process 1) profiling TPC-H lineitem with {n_rows} rows ...")
    relation = lineitem_relation(n_rows, seed=21)
    started = time.perf_counter()
    profiler = SwanProfiler.profile(relation, algorithm="ducc")
    print(
        f"  {len(profiler.minimal_uniques())} minimal uniques discovered "
        f"in {time.perf_counter() - started:.2f}s"
    )

    path = os.path.join(tempfile.gettempdir(), "lineitem_profile.json")
    dump_profile(relation.schema, profiler.snapshot(), path)
    print(f"  profile saved to {path}")

    print("\n(process 2) restarting with a *reordered* schema ...")
    reordered_names = list(reversed(relation.schema.names))
    reordered = Relation.from_rows(
        Schema(reordered_names),
        (tuple(reversed(row)) for row in relation.iter_rows()),
    )
    stored = load_profile(path)
    mucs, mnucs = stored.masks_for(reordered.schema)
    started = time.perf_counter()
    revived = SwanProfiler(reordered, mucs, mnucs)
    print(
        f"  SWAN re-attached in {time.perf_counter() - started:.2f}s "
        "(index + PLI build only, no discovery)"
    )

    key = ["l_orderkey", "l_linenumber"]
    print(f"  is {key} still a key? {revived.is_unique(key)}")

    batch = [tuple(reversed(row)) for row in lineitem_relation(30, seed=99).iter_rows()]
    profile = revived.handle_inserts(batch)
    print(
        f"  insert batch of {len(batch)} handled; profile now has "
        f"{len(profile.mucs)} minimal uniques"
    )
    os.remove(path)


if __name__ == "__main__":
    main()
