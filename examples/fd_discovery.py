#!/usr/bin/env python3
"""Functional dependency discovery alongside unique discovery.

The paper points out that uniques feed FD discovery and that both rest
on the same partition machinery. This example profiles an NCVoter-like
relation for *both* kinds of metadata and shows the bridges:

* the generator's planted dependencies (county_id -> county_desc,
  zip_code -> res_city_desc) are recovered from the data alone;
* every discovered candidate key functionally determines every other
  column.

Run:  python examples/fd_discovery.py
"""

import time

from repro import discover
from repro.datasets.ncvoter import ncvoter_relation
from repro.fd import discover_fds
from repro.fd.tane import holds


def main() -> None:
    relation = ncvoter_relation(800, n_columns=12, seed=4)
    schema = relation.schema
    print(f"profiling {len(relation)} rows x {relation.n_columns} columns\n")

    started = time.perf_counter()
    mucs, __ = discover(relation, "ducc")
    print(
        f"{len(mucs)} minimal uniques in {time.perf_counter() - started:.2f}s; "
        "smallest:"
    )
    for mask in mucs[:5]:
        print(f"  {schema.combination(mask)}")

    started = time.perf_counter()
    fds = discover_fds(relation, max_lhs=2)
    print(
        f"\n{len(fds)} minimal FDs (LHS <= 2) in "
        f"{time.perf_counter() - started:.2f}s; single-column ones:"
    )
    for fd in fds:
        if bin(fd.lhs).count("1") == 1:
            print(f"  {fd.named(schema)}")

    # The planted dependencies must be recovered.
    county = schema.index_of("county_id")
    desc = schema.index_of("county_desc")
    assert any(
        fd.lhs == 1 << county and fd.rhs == desc
        or holds(relation, fd.lhs, desc) and fd.rhs == desc
        for fd in fds
    ), "county_id -> county_desc must be discovered"
    print("\nplanted FD county_id -> county_desc recovered from data alone")

    # Every candidate key determines every other column.
    for mask in mucs[:3]:
        assert all(
            holds(relation, mask, rhs)
            for rhs in range(relation.n_columns)
            if not mask >> rhs & 1
        )
    print("every candidate key functionally determines all other columns")


if __name__ == "__main__":
    main()
