#!/usr/bin/env python3
"""Data-quality monitoring over a stream of voter-registration inserts.

The paper motivates incremental discovery with master-data quality
monitoring: "when monitoring data quality, it is crucial to update
meta-data frequently in order to recognize and rectify potential
problems as soon as possible". This example plays that scenario:

1. load an NCVoter-like relation and profile it once;
2. replay a stream of insert batches, some of which contain dirty
   duplicates (copied registration numbers);
3. after every batch, compare the maintained minimal uniques against
   the expected business keys and raise alerts when a key silently
   stopped being unique.

Run:  python examples/data_quality_monitoring.py
"""

import random
import time

from repro import SwanProfiler
from repro.core.monitor import EventKind, UniqueConstraintMonitor
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.workload import split_initial_and_inserts


def main() -> None:
    print("generating NCVoter-like data (3000 rows x 20 columns) ...")
    relation = ncvoter_relation(3000, n_columns=20, seed=12)
    workload = split_initial_and_inserts(
        relation, initial_rows=2500, batch_fractions=[0.02] * 5, seed=12
    )
    initial = workload.initial
    schema = initial.schema

    print("profiling the initial dataset with DUCC ...")
    started = time.perf_counter()
    profiler = SwanProfiler.profile(initial, algorithm="ducc", maintain_plis=False)
    print(
        f"  done in {time.perf_counter() - started:.2f}s: "
        f"{len(profiler.minimal_uniques())} minimal uniques, "
        f"indexes on {sorted(profiler.indexed_columns)}"
    )

    # The keys the business believes in.
    monitor = UniqueConstraintMonitor(profiler)
    monitor.watch(["voter_reg_num", "county_id"], label="registration key")
    monitor.watch(["ncid", "county_id"], label="NCID key")

    rng = random.Random(0)
    reg_column = schema.index_of("voter_reg_num")
    ncid_column = schema.index_of("ncid")
    county_column = schema.index_of("county_id")

    for batch_number, batch in enumerate(workload.insert_batches, start=1):
        rows = [list(row) for row in batch]
        dirty = batch_number in (3, 5)
        if dirty:
            # Simulate an ETL bug: half the batch re-sends tuples whose
            # identifying columns were already loaded.
            existing = [initial.row(tid) for tid in list(initial.iter_ids())[:40]]
            for row in rows[: len(rows) // 2]:
                donor = rng.choice(existing)
                row[reg_column] = donor[reg_column]
                row[ncid_column] = donor[ncid_column]
                row[county_column] = donor[county_column]
        started = time.perf_counter()
        events = monitor.apply_inserts([tuple(row) for row in rows])
        elapsed = time.perf_counter() - started
        stats = profiler.last_insert_stats
        print(
            f"batch {batch_number}: {len(rows)} inserts handled in "
            f"{elapsed * 1000:.1f} ms ({stats.tuples_retrieved} old tuples "
            f"fetched, {stats.broken_mucs} minimal uniques broken)"
        )
        for event in events:
            prefix = "  ALERT" if event.kind is EventKind.KEY_BROKEN else "  note"
            print(f"{prefix}: {event}")

    print(f"\n{len(monitor.history)} events recorded across all batches")
    print("final minimal uniques (first 10):")
    for combo in profiler.minimal_uniques()[:10]:
        print(f"  {combo}")


if __name__ == "__main__":
    main()
