#!/usr/bin/env python3
"""Quickstart: the paper's running example (Table I), end to end.

Builds the three-tuple Persons relation, profiles it, and replays the
insert and delete the paper walks through in Section I -- printing the
minimal uniques (candidate keys) and maximal non-uniques after each
step.

Run:  python examples/quickstart.py
"""

from repro import Relation, Schema, SwanProfiler


def show(step: str, profiler: SwanProfiler) -> None:
    mucs = ", ".join(str(combo) for combo in profiler.minimal_uniques())
    mnucs = ", ".join(str(combo) for combo in profiler.maximal_non_uniques())
    print(f"{step}")
    print(f"  minimal uniques     : {mucs}")
    print(f"  maximal non-uniques : {mnucs}")
    print()


def main() -> None:
    schema = Schema(["Name", "Phone", "Age"])
    relation = Relation.from_rows(
        schema,
        [
            ("Lee", "345", "20"),
            ("Payne", "245", "30"),
            ("Lee", "234", "30"),
        ],
    )

    # Bootstrap: any holistic algorithm computes the initial profile and
    # SWAN builds its indexes around it.
    profiler = SwanProfiler.profile(relation, algorithm="ducc")
    show("initial Persons relation (3 tuples)", profiler)

    # Insert case: (Payne, 245, 31) reuses an existing phone number, so
    # {Phone} stops being unique; {Phone, Age} replaces it.
    profiler.handle_inserts([("Payne", "245", "31")])
    show("after inserting (Payne, 245, 31)", profiler)

    # Delete case: removing (Lee, 234, 30) eliminates the duplicates
    # that kept Name and Phone non-unique.
    profiler.handle_deletes([2])
    show("after deleting (Lee, 234, 30)", profiler)

    # Membership queries run against the maintained profile -- no scan.
    print(f"is {{Age}} unique?          {profiler.is_unique(['Age'])}")
    print(f"is {{Name, Phone}} unique?  {profiler.is_unique(['Name', 'Phone'])}")


if __name__ == "__main__":
    main()
