"""Fig. 1: insert batches on small initial datasets (a: NCVoter,
b: Uniprot, c: TPC-H with DBMS-X).

Measures the per-batch cost of each system: DUCC re-profiles the whole
grown dataset, GORDIAN-INC extends its live prefix tree and rediscovers
seeded with the old maximal non-uniques, SWAN runs its inserts handler,
and DBMS-X (Fig. 1c only) validates the batch against the declared
constraints. Full sweeps: ``repro-bench fig1a fig1b fig1c``.
"""

import pytest

from repro.errors import BudgetExceededError

from conftest import insert_setup
from repro.baselines.dbms import DbmsConstraintChecker
from repro.baselines.ducc import discover_ducc
from repro.baselines.gordian_inc import GordianInc
from repro.core.swan import SwanProfiler

DATASETS = ["ncvoter", "uniprot", "tpch"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_swan_insert_batch(benchmark, dataset):
    initial, batch, mucs, mnucs = insert_setup(dataset)

    def setup():
        quota = 8 if dataset == "tpch" else 20
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False
        )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_gordian_inc_insert_batch(benchmark, dataset):
    initial, batch, __, mnucs = insert_setup(dataset)

    def setup():
        return (GordianInc(initial, mnucs, deadline_s=120.0),), {}

    def run(gordian):
        try:
            return gordian.handle_inserts(batch)
        except BudgetExceededError:
            pytest.skip("GORDIAN-INC exceeded its budget (see EXPERIMENTS.md)")

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_ducc_full_reprofile(benchmark, dataset):
    initial, batch, __, ___ = insert_setup(dataset)

    def setup():
        grown = initial.copy()
        grown.insert_many(batch)
        return (grown,), {}

    def run(grown):
        return discover_ducc(grown)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


def test_dbms_x_constraint_validation(benchmark):
    """Fig. 1c's extra system: per-tuple validation of all declared
    minimal uniques on TPC-H."""
    initial, batch, mucs, __ = insert_setup("tpch")

    def setup():
        return (DbmsConstraintChecker(initial, mucs),), {}

    def run(checker):
        return checker.insert_batch(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
