"""Service recovery: snapshot + changelog replay vs holistic re-run.

The service layer's pitch is that a restart costs a snapshot load plus
an incremental replay of the committed changelog suffix instead of a
full holistic re-profiling of the dataset.  These benchmarks measure
both restart paths over the same durable state directory, at several
replay-suffix lengths.

Run with ``pytest benchmarks/bench_recovery.py --benchmark-only``.
"""

import os
import shutil
import tempfile

import pytest

from conftest import insert_setup
from repro.baselines.ducc import discover_ducc
from repro.service.recovery import recover
from repro.service.server import CHANGELOG_NAME, ProfilingService, ServiceConfig

SUFFIX_BATCHES = [1, 8, 32]
BATCH_ROWS = 5
_CACHE: dict = {}


def state_dir_with_suffix(n_batches):
    """A durable state dir: seq-0 snapshot + ``n_batches`` committed
    insert records that recovery must replay."""
    if n_batches not in _CACHE:
        initial, batch, _, __ = insert_setup("ncvoter")
        data_dir = tempfile.mkdtemp(prefix=f"bench-recovery-{n_batches}-")
        service = ProfilingService(
            data_dir,
            config=ServiceConfig(snapshot_every=0, status_every=0, fsync=False),
        )
        service.start(initial=initial.copy())
        for index in range(n_batches):
            rows = batch[index * BATCH_ROWS : (index + 1) * BATCH_ROWS]
            service.apply_insert_batch(rows)
        # crash: abandon without the final stop() snapshot
        grown = service.profiler.relation.copy()
        _CACHE[n_batches] = (data_dir, grown)
    return _CACHE[n_batches]


@pytest.mark.parametrize("n_batches", SUFFIX_BATCHES)
def test_recover_snapshot_replay(benchmark, n_batches):
    data_dir, _ = state_dir_with_suffix(n_batches)
    snapshots_dir = os.path.join(data_dir, "snapshots")
    log_path = os.path.join(data_dir, CHANGELOG_NAME)

    def run():
        from repro.service.snapshots import SnapshotManager

        return recover(SnapshotManager(snapshots_dir), log_path)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.replayed_records == n_batches


@pytest.mark.parametrize("n_batches", SUFFIX_BATCHES)
def test_holistic_rerun(benchmark, n_batches):
    _, grown = state_dir_with_suffix(n_batches)

    def run():
        return discover_ducc(grown)

    benchmark.pedantic(run, rounds=3, iterations=1)


def teardown_module(module):
    for data_dir, _ in _CACHE.values():
        shutil.rmtree(data_dir, ignore_errors=True)
