"""Fig. 4: index analysis -- Index All vs SWAN minimal vs SWAN (quota).

Same insert batch pushed through three SWAN variants that differ only
in Algorithm 3/4's output: the minimal cover, the quota-extended cover,
and an index on every column. The paper's finding: the quota-extended
set beats the minimal set, while indexing everything backfires on large
batches. Full sweeps: ``repro-bench fig4a fig4b fig4c``.
"""

import pytest

from conftest import insert_setup
from repro.core.swan import SwanProfiler

DATASETS = ["ncvoter", "uniprot", "tpch"]


def _variant(initial, mucs, mnucs, variant: str, n_columns: int) -> SwanProfiler:
    if variant == "minimal":
        return SwanProfiler(initial.copy(), mucs, mnucs, maintain_plis=False)
    if variant == "quota":
        return SwanProfiler(
            initial.copy(), mucs, mnucs,
            index_quota=n_columns // 2, maintain_plis=False,
        )
    return SwanProfiler(
        initial.copy(), mucs, mnucs,
        index_columns=list(range(n_columns)), maintain_plis=False,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("variant", ["minimal", "quota", "index_all"])
def test_index_variants(benchmark, dataset, variant):
    initial, batch, mucs, mnucs = insert_setup(dataset)
    n_columns = initial.n_columns

    def setup():
        return (_variant(initial, mucs, mnucs, variant, n_columns),), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
