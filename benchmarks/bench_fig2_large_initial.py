"""Fig. 2: insert batches on *larger* initial datasets.

Same systems as Fig. 1 at 4x the default initial size; the paper's
headline here is that SWAN's cost depends on the batch, not the initial
dataset -- visible as SWAN's time barely moving between Fig. 1 and
Fig. 2 benches while DUCC's quadruples. Full sweeps: ``repro-bench
fig2a fig2b fig2c``.
"""

import pytest

from conftest import ROWS, SEED, _GENERATORS
from repro.baselines.ducc import discover_ducc
from repro.core.swan import SwanProfiler
from repro.datasets.workload import split_initial_and_inserts

DATASETS = ["ncvoter", "uniprot", "tpch"]
SCALE_UP = 4
_CACHE: dict = {}


def large_setup(dataset: str):
    if dataset not in _CACHE:
        initial_rows = ROWS * SCALE_UP
        total = initial_rows + int(initial_rows * 0.12)
        cols = 20 if dataset != "tpch" else 16
        relation = _GENERATORS[dataset](total, cols)
        workload = split_initial_and_inserts(relation, initial_rows, [0.10], seed=SEED)
        mucs, mnucs = discover_ducc(workload.initial)
        _CACHE[dataset] = (workload.initial, workload.insert_batches[0], mucs, mnucs)
    return _CACHE[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_swan_insert_batch_large_initial(benchmark, dataset):
    initial, batch, mucs, mnucs = large_setup(dataset)

    def setup():
        quota = 8 if dataset == "tpch" else 20
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False
        )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_ducc_full_reprofile_large_initial(benchmark, dataset):
    initial, batch, __, ___ = large_setup(dataset)

    def setup():
        grown = initial.copy()
        grown.insert_many(batch)
        return (grown,), {}

    def run(grown):
        return discover_ducc(grown)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
