"""Benchmarks for the extension modules (beyond the paper's figures).

* TANE-style FD discovery (capped LHS) on the dataset stand-ins;
* unary IND discovery;
* approximate unique discovery at several budgets;
* the once-per-batch agree-set precomputation used by SWAN's inserts.
"""

import pytest

from conftest import ROWS, SEED, _GENERATORS
from repro.core.inserts import batch_agree_antichain
from repro.fd.tane import discover_fds
from repro.ind.unary import discover_unary_inds
from repro.profiling.approximate import discover_approximate_uniques

_CACHE: dict = {}


def small_relation(dataset: str, n_columns: int = 12):
    key = (dataset, n_columns)
    if key not in _CACHE:
        _CACHE[key] = _GENERATORS[dataset](max(200, ROWS // 2), n_columns)
    return _CACHE[key]


@pytest.mark.parametrize("dataset", ["ncvoter", "tpch"])
def test_fd_discovery(benchmark, dataset):
    relation = small_relation(dataset)
    benchmark.pedantic(
        lambda: discover_fds(relation, max_lhs=2), rounds=3, iterations=1
    )


@pytest.mark.parametrize("dataset", ["ncvoter", "uniprot"])
def test_unary_ind_discovery(benchmark, dataset):
    relation = small_relation(dataset, n_columns=20)
    benchmark.pedantic(
        lambda: discover_unary_inds(relation), rounds=3, iterations=1
    )


@pytest.mark.parametrize("budget", [0, 2, 8])
def test_approximate_unique_discovery(benchmark, budget):
    relation = small_relation("tpch", n_columns=12)
    benchmark.pedantic(
        lambda: discover_approximate_uniques(relation, budget),
        rounds=3,
        iterations=1,
    )


def test_batch_agree_antichain(benchmark):
    relation = small_relation("ncvoter", n_columns=20)
    rows = list(relation.iter_rows())[:100]
    benchmark.pedantic(
        lambda: batch_agree_antichain(rows, relation.n_columns),
        rounds=3,
        iterations=1,
    )
