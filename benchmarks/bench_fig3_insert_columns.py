"""Fig. 3: inserts while scaling the number of columns (NCVoter).

SWAN's per-batch cost as the schema widens; the paper shows SWAN more
than an order of magnitude ahead at every width, with the baselines
failing to finish at 70 columns. Full sweep: ``repro-bench fig3``.
"""

import pytest

from conftest import ROWS, SEED
from repro.baselines.ducc import discover_ducc
from repro.core.swan import SwanProfiler
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.workload import split_initial_and_inserts

COLUMNS = [10, 20, 30]
_CACHE: dict = {}


def column_setup(n_columns: int):
    if n_columns not in _CACHE:
        total = ROWS + int(ROWS * 0.12)
        relation = ncvoter_relation(total, n_columns, seed=SEED)
        workload = split_initial_and_inserts(relation, ROWS, [0.10], seed=SEED)
        mucs, mnucs = discover_ducc(workload.initial)
        _CACHE[n_columns] = (
            workload.initial,
            workload.insert_batches[0],
            mucs,
            mnucs,
        )
    return _CACHE[n_columns]


@pytest.mark.parametrize("n_columns", COLUMNS)
def test_swan_insert_scaling_columns(benchmark, n_columns):
    initial, batch, mucs, mnucs = column_setup(n_columns)

    def setup():
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=20, maintain_plis=False
        )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("n_columns", COLUMNS[:2])
def test_ducc_insert_scaling_columns(benchmark, n_columns):
    initial, batch, __, ___ = column_setup(n_columns)

    def setup():
        grown = initial.copy()
        grown.insert_many(batch)
        return (grown,), {}

    def run(grown):
        return discover_ducc(grown)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
