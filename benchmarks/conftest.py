"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_figX_*.py`` file measures the per-batch work of every
system in the corresponding paper figure, at a reduced default scale so
``pytest benchmarks/ --benchmark-only`` completes on a laptop. The
``repro-bench`` CLI runs the same experiments as full sweeps and prints
the paper-style series; EXPERIMENTS.md records those results.

Environment knobs:

* ``REPRO_BENCH_ROWS``  -- initial rows per dataset (default 800)
* ``REPRO_BENCH_COLS``  -- columns for NCVoter/Uniprot (default 20)
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.ducc import discover_ducc
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.tpch import lineitem_relation
from repro.datasets.uniprot import uniprot_relation
from repro.datasets.workload import split_initial_and_inserts

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "800"))
COLS = int(os.environ.get("REPRO_BENCH_COLS", "20"))
SEED = 7

_GENERATORS = {
    "ncvoter": lambda rows, cols: ncvoter_relation(rows, cols, seed=SEED),
    "uniprot": lambda rows, cols: uniprot_relation(rows, cols, seed=SEED),
    "tpch": lambda rows, cols: lineitem_relation(rows, min(cols, 16), seed=SEED),
}

_CACHE: dict = {}


def insert_setup(dataset: str, batch_fraction: float = 0.10):
    """(initial relation, batch, mucs, mnucs) for an insert benchmark,
    generated and profiled once per session."""
    key = ("insert", dataset, batch_fraction)
    if key not in _CACHE:
        total = ROWS + int(ROWS * (batch_fraction + 0.02))
        relation = _GENERATORS[dataset](total, COLS)
        workload = split_initial_and_inserts(
            relation, ROWS, [batch_fraction], seed=SEED
        )
        mucs, mnucs = discover_ducc(workload.initial)
        _CACHE[key] = (workload.initial, workload.insert_batches[0], mucs, mnucs)
    return _CACHE[key]


def delete_setup(dataset: str):
    """(relation, mucs, mnucs) for a delete benchmark."""
    key = ("delete", dataset)
    if key not in _CACHE:
        relation = _GENERATORS[dataset](ROWS, COLS)
        mucs, mnucs = discover_ducc(relation)
        _CACHE[key] = (relation, mucs, mnucs)
    return _CACHE[key]


@pytest.fixture(scope="session")
def bench_rows() -> int:
    return ROWS
