"""Fig. 8: 1% deletes while scaling the number of columns (NCVoter).

The paper: SWAN finishes in seconds at every width (more than an order
of magnitude ahead), while GORDIAN-INC never finishes the widest
configurations. Full sweep: ``repro-bench fig8``.
"""

import pytest

from conftest import ROWS, SEED
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.ducc import discover_ducc
from repro.core.swan import SwanProfiler
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.workload import delete_batch_ids

COLUMNS = [10, 20, 30]
_CACHE: dict = {}


def column_setup(n_columns: int):
    if n_columns not in _CACHE:
        relation = ncvoter_relation(ROWS, n_columns, seed=SEED)
        mucs, mnucs = discover_ducc(relation)
        doomed = delete_batch_ids(relation, 0.01, seed=SEED)
        _CACHE[n_columns] = (relation, mucs, mnucs, doomed)
    return _CACHE[n_columns]


@pytest.mark.parametrize("n_columns", COLUMNS)
def test_swan_delete_scaling_columns(benchmark, n_columns):
    relation, mucs, mnucs, doomed = column_setup(n_columns)

    def setup():
        return (SwanProfiler(relation.copy(), mucs, mnucs),), {}

    def run(profiler):
        return profiler.handle_deletes(doomed)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("n_columns", COLUMNS[:2])
def test_ducc_inc_delete_scaling_columns(benchmark, n_columns):
    relation, mucs, __, doomed = column_setup(n_columns)

    def setup():
        return (DuccInc(relation.copy(), mucs),), {}

    def run(ducc_inc):
        return ducc_inc.handle_deletes(doomed)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
