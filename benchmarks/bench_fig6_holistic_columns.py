"""Fig. 6: end-to-end holistic profiling while scaling columns.

Unlike every other benchmark, SWAN's time here *includes* the static
bootstrap (DUCC on the sample) and index construction, because the
figure compares complete profiling strategies: DUCC on everything vs
DUCC on a sample + SWAN on the rest. Full sweep: ``repro-bench fig6``.
"""

import pytest

from conftest import SEED
from repro.baselines.ducc import discover_ducc
from repro.core.swan import SwanProfiler
from repro.datasets.ncvoter import ncvoter_relation
from repro.storage.relation import Relation

TOTAL_ROWS = 1100
COLUMNS = [10, 20]
_CACHE: dict = {}


def rows_for(n_columns: int):
    if n_columns not in _CACHE:
        relation = ncvoter_relation(TOTAL_ROWS, n_columns, seed=SEED)
        _CACHE[n_columns] = (relation.schema, list(relation.iter_rows()))
    return _CACHE[n_columns]


@pytest.mark.parametrize("n_columns", COLUMNS)
@pytest.mark.parametrize("sample", [1000, 100])
def test_swan_end_to_end(benchmark, n_columns, sample):
    schema, rows = rows_for(n_columns)

    def run():
        initial = Relation.from_rows(schema, rows[:sample])
        profiler = SwanProfiler.profile(initial, algorithm="ducc", maintain_plis=False)
        return profiler.handle_inserts(rows[sample:])

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("n_columns", COLUMNS)
def test_ducc_end_to_end(benchmark, n_columns):
    schema, rows = rows_for(n_columns)

    def run():
        return discover_ducc(Relation.from_rows(schema, rows))

    benchmark.pedantic(run, rounds=1, iterations=1)
