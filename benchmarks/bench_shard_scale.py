#!/usr/bin/env python
"""Horizontal scale-out benchmark: K-sharded profiles vs one profiler.

Runs one append-only workload -- the standard 20k-row ncvoter slice,
profiled at 6,666 rows and then grown by two insert batches of 6,666
rows each -- through ``SwanProfiler.build`` at ``shards`` in {1, 2, 4}
under both execution modes, holding every other knob fixed at the
operator defaults (``parallelism=4``).  ``shards=1`` builds the plain
unsharded profiler, exactly what ``repro-serve --shards 1`` deploys, so
the sweep measures precisely what an operator buys by turning the one
knob.  A scalar oracle (``repro.core.reference.ReferenceDynamicRunner``,
pointer PLIs probed one tuple at a time) replays the same workload
once; every configuration's per-batch (MUCS, MNUCS) profile must be
bit-identical to the oracle's or the script aborts, so a "fast but
wrong" result can never be recorded.

Why sharding wins on this box: per-batch insert analysis retrieves and
filters duplicate candidates against the *resident* rows, an
``O(batch x resident)`` volume that drops to ``~1/K`` per shard, while
the exact cross-shard merge recomposes the global profile from
shard-local antichains plus targeted cross-shard probes.  The report
records ``cpus`` -- on a single-CPU host there is no true parallelism
anywhere, so the measured speedup is purely algorithmic, and process
fan-out additionally pays a fork/copy-on-write tax in *both* the
sharded and unsharded configurations.

The insert-only section re-runs the same append-only workload at
``shards=4`` with ``shard_insert_only=True`` (shards built without
PLIs and without a delete path) against full shards, recording the
batch-application time and the tracemalloc peak of build+apply for
each.

Methodology: the timed region covers only ``handle_inserts`` calls.
Dataset generation, holistic discovery (shared across configurations),
facade construction -- including per-shard discovery and PLI builds --
and workload materialization all happen before the clock starts.
Memory peaks come from separate tracemalloc-instrumented runs that are
never used for timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py \
        [--rows 20000] [--rounds 2] \
        [--output bench_results/BENCH_shard_scale.json] \
        [--baseline benchmarks/baselines/bench_shard_scale.json] \
        [--min-speedup 1.8] [--max-regression 2.0]

Exit status: 0 on success; 1 when any profile diverges from the
oracle, when the ``shards-4-process`` speedup over ``shards-1-process``
falls below ``--min-speedup``, or, with ``--baseline``, when that
speedup drops below the committed value divided by ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.reference import ReferenceDynamicRunner  # noqa: E402
from repro.core.swan import SwanProfiler  # noqa: E402
from repro.datasets.ncvoter import ncvoter_relation  # noqa: E402
from repro.datasets.workload import split_initial_and_inserts  # noqa: E402
from repro.profiling.discovery import discover  # noqa: E402
from repro.storage.relation import Relation  # noqa: E402

COLS = 20
SEED = 7
PARALLELISM = 4

GATED_CONFIG = "shards-4-process"
BASE_CONFIG = "shards-1-process"

CONFIGS = {
    "flat-serial": dict(shards=1, parallelism=0, execution_mode="thread"),
    "shards-1-thread": dict(shards=1, execution_mode="thread"),
    "shards-1-process": dict(shards=1, execution_mode="process"),
    "shards-2-thread": dict(shards=2, execution_mode="thread"),
    "shards-2-process": dict(shards=2, execution_mode="process"),
    "shards-4-thread": dict(shards=4, execution_mode="thread"),
    "shards-4-process": dict(shards=4, execution_mode="process"),
}


def materialize_workload(rows: int):
    """Split the dataset into an initial slice plus two insert batches."""
    relation = ncvoter_relation(rows, n_columns=COLS, seed=SEED)
    initial_rows = rows // 3
    return split_initial_and_inserts(
        relation, initial_rows=initial_rows, batch_fractions=[1.0, 1.0], seed=SEED
    )


def fresh_relation(initial) -> Relation:
    relation = Relation(initial.schema)
    for row in initial.iter_rows():
        relation.insert(row)
    return relation


def run_reference(work, profile):
    runner = ReferenceDynamicRunner(
        fresh_relation(work.initial),
        list(profile[0]),
        list(profile[1]),
        index_columns=[],
    )
    profiles = []
    started = time.perf_counter()
    for batch in work.insert_batches:
        outcome = runner.handle_inserts(batch)
        profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
    return time.perf_counter() - started, profiles


def build_profiler(work, profile, *, shards, execution_mode,
                   parallelism=PARALLELISM, shard_insert_only=False):
    return SwanProfiler.build(
        fresh_relation(work.initial),
        list(profile[0]),
        list(profile[1]),
        algorithm="ducc",
        parallelism=parallelism,
        execution_mode=execution_mode,
        shards=shards,
        shard_insert_only=shard_insert_only,
    )


def run_config(work, profile, knobs):
    profiler = build_profiler(work, profile, **knobs)
    profiles = []
    started = time.perf_counter()
    try:
        for batch in work.insert_batches:
            outcome = profiler.handle_inserts(batch)
            profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
        elapsed = time.perf_counter() - started
        stats = {"pool": profiler.pool_stats()}
        if hasattr(profiler, "shard_stats"):
            stats["shards"] = profiler.shard_stats()
        return elapsed, profiles, stats
    finally:
        profiler.close()


def traced_peak_bytes(work, profile, **knobs) -> int:
    """tracemalloc peak over build+apply; never used for timing."""
    tracemalloc.start()
    try:
        profiler = build_profiler(work, profile, **knobs)
        try:
            for batch in work.insert_batches:
                profiler.handle_inserts(batch)
        finally:
            profiler.close()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_SHARD_ROWS", "20000")),
    )
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.8,
        help=f"fail when the {GATED_CONFIG} speedup over {BASE_CONFIG} "
        "falls below this",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help=f"with --baseline: fail when the {GATED_CONFIG} speedup "
        "drops below committed / this factor",
    )
    args = parser.parse_args(argv)

    work = materialize_workload(args.rows)
    profile = discover(work.initial, "ducc")
    print(
        f"== shard-scale: rows={args.rows} cols={COLS} "
        f"initial={len(work.initial)} "
        f"batches={[len(b) for b in work.insert_batches]} "
        f"rounds={args.rounds} parallelism={PARALLELISM} "
        f"cpus={os.cpu_count()}"
    )

    reference_elapsed, reference_profiles = run_reference(work, profile)
    print(f"   oracle     {reference_elapsed:.3f}s (scalar pointer-PLI pipeline)")

    results = {}
    for name, knobs in CONFIGS.items():
        times = []
        stats = None
        for _ in range(args.rounds):
            elapsed, profiles, stats = run_config(work, profile, knobs)
            if profiles != reference_profiles:
                print(
                    f"FATAL: {name} produced a different profile than the "
                    "scalar oracle",
                    file=sys.stderr,
                )
                return 1
            times.append(elapsed)
        best = min(times)
        results[name] = {
            "times_s": [round(t, 4) for t in times],
            "best_s": round(best, 4),
            "speedup_vs_oracle": round(reference_elapsed / best, 3),
            **(stats or {}),
        }
        print(
            f"   {name:<17} {best:.3f}s  "
            f"{results[name]['speedup_vs_oracle']:.2f}x vs oracle"
        )

    gated = results[BASE_CONFIG]["best_s"] / results[GATED_CONFIG]["best_s"]
    thread_pair = (
        results["shards-1-thread"]["best_s"] / results["shards-4-thread"]["best_s"]
    )
    print(f"   {GATED_CONFIG} vs {BASE_CONFIG}: {gated:.2f}x")
    print(f"   shards-4-thread vs shards-1-thread: {thread_pair:.2f}x")

    # Insert-only fast path: full shards vs PLI-free shards, same workload.
    insert_only = {}
    for label, fast_path in (("full", False), ("insert_only", True)):
        knobs = dict(shards=4, execution_mode="thread", shard_insert_only=fast_path)
        times = []
        for _ in range(args.rounds):
            elapsed, profiles, _stats = run_config(work, profile, knobs)
            if profiles != reference_profiles:
                print(
                    f"FATAL: insert-only section ({label}) diverged from "
                    "the scalar oracle",
                    file=sys.stderr,
                )
                return 1
            times.append(elapsed)
        insert_only[label] = {
            "best_s": round(min(times), 4),
            "peak_bytes": traced_peak_bytes(work, profile, **knobs),
        }
    time_reduction = 1 - insert_only["insert_only"]["best_s"] / insert_only["full"]["best_s"]
    memory_reduction = 1 - (
        insert_only["insert_only"]["peak_bytes"] / insert_only["full"]["peak_bytes"]
    )
    insert_only["time_reduction"] = round(time_reduction, 3)
    insert_only["memory_reduction"] = round(memory_reduction, 3)
    print(
        f"   insert-only shards: {insert_only['insert_only']['best_s']:.3f}s vs "
        f"{insert_only['full']['best_s']:.3f}s full "
        f"({time_reduction:+.1%} time, {memory_reduction:+.1%} peak memory)"
    )

    report = {
        "benchmark": "shard_scale",
        "rows": args.rows,
        "columns": COLS,
        "initial_rows": len(work.initial),
        "insert_batches": [len(b) for b in work.insert_batches],
        "rounds": args.rounds,
        "parallelism": PARALLELISM,
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "profiles_identical": True,
        "oracle_s": round(reference_elapsed, 4),
        "configs": results,
        "speedup_shards4_vs_shards1_process": round(gated, 3),
        "speedup_shards4_vs_shards1_thread": round(thread_pair, 3),
        "insert_only": insert_only,
    }

    failed = False
    if gated < args.min_speedup:
        print(
            f"REGRESSION: {GATED_CONFIG} speedup {gated:.2f}x over "
            f"{BASE_CONFIG} is below the {args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        failed = True
    if insert_only["time_reduction"] <= 0 and insert_only["memory_reduction"] <= 0:
        print(
            "REGRESSION: insert-only shard mode shows no time or memory "
            "reduction over full shards",
            file=sys.stderr,
        )
        failed = True
    if args.baseline and args.baseline.exists():
        committed = json.loads(args.baseline.read_text())
        reference = committed.get("speedup_shards4_vs_shards1_process")
        if reference is not None and gated < reference / args.max_regression:
            print(
                f"REGRESSION: {GATED_CONFIG} speedup {gated:.2f}x dropped "
                f"below committed {reference:.2f}x / {args.max_regression}",
                file=sys.stderr,
            )
            failed = True

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
