#!/usr/bin/env python
"""Execution-mode scaling benchmark: scalar reference vs SWAN fan-out.

Runs one repeated-delete workload through the frozen scalar pipeline
(``repro.core.reference.ReferenceDynamicRunner`` -- pointer PLIs probed
one tuple at a time) and through ``SwanProfiler`` in several execution
configurations: serial, thread fan-out, and process fan-out at 2 and 4
workers. Every configuration's per-batch (MUCS, MNUCS) profile must be
bit-identical to the scalar reference's; the script aborts otherwise,
so a "fast but wrong" result can never be recorded.

The headline number is the speedup of each configuration over the
scalar reference. On a single-CPU machine the process pool cannot beat
the thread pool on wall clock -- the speedup there comes from the
vectorized kernels and the cross-batch partition cache, and the report
records ``cpus`` so readers can interpret the scaling columns.

Methodology: the timed region covers only profiler work. Dataset
generation, holistic discovery, driver construction (including the
reference runner's PLI builds), and workload materialization -- the
``delete_batch_ids`` sampling is replayed against a throwaway relation
up front -- all happen before the clock starts.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scale.py \
        [--rows 6000] [--rounds 3] \
        [--output bench_results/BENCH_parallel_scale.json] \
        [--baseline benchmarks/baselines/bench_parallel_scale.json] \
        [--min-speedup 2.5] [--max-regression 2.0]

Exit status: 0 on success; 1 when profiles diverge, when the
``process-4`` speedup over the scalar reference falls below
``--min-speedup``, or, with ``--baseline``, when that speedup drops
below the committed value divided by ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.reference import ReferenceDynamicRunner  # noqa: E402
from repro.core.swan import SwanProfiler  # noqa: E402
from repro.datasets.ncvoter import ncvoter_relation  # noqa: E402
from repro.datasets.workload import delete_batch_ids  # noqa: E402

COLS = 20
SEED = 7

GATED_CONFIG = "process-4"


def materialize_batches(rows: int, n_batches: int, fraction: float):
    """Pre-sample every delete batch against a throwaway relation."""
    relation = ncvoter_relation(rows, COLS, seed=SEED)
    batches = []
    for step in range(n_batches):
        doomed = delete_batch_ids(relation, fraction, seed=100 + step)
        relation.delete_many(doomed)
        batches.append(doomed)
    return batches


_DISCOVERY_CACHE: dict[int, tuple[list[int], list[int]]] = {}


def initial_profile(rows: int) -> tuple[list[int], list[int]]:
    if rows not in _DISCOVERY_CACHE:
        from repro.profiling.discovery import discover

        relation = ncvoter_relation(rows, COLS, seed=SEED)
        _DISCOVERY_CACHE[rows] = discover(relation, "ducc")
    return _DISCOVERY_CACHE[rows]


def run_reference(rows: int, batches):
    mucs, mnucs = initial_profile(rows)
    runner = ReferenceDynamicRunner(
        ncvoter_relation(rows, COLS, seed=SEED),
        list(mucs),
        list(mnucs),
        index_columns=[],
    )
    profiles = []
    started = time.perf_counter()
    for doomed in batches:
        outcome = runner.handle_deletes(doomed)
        profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
    return time.perf_counter() - started, profiles


def run_swan(rows: int, batches, parallelism: int, execution_mode: str):
    mucs, mnucs = initial_profile(rows)
    profiler = SwanProfiler.profile(
        ncvoter_relation(rows, COLS, seed=SEED),
        algorithm=lambda relation: (list(mucs), list(mnucs)),
        parallelism=parallelism,
        execution_mode=execution_mode,
    )
    profiles = []
    started = time.perf_counter()
    try:
        for doomed in batches:
            outcome = profiler.handle_deletes(doomed)
            profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
        return time.perf_counter() - started, profiles, profiler.pool_stats()
    finally:
        profiler.close()


CONFIGS = {
    "serial": dict(parallelism=0, execution_mode="thread"),
    "thread-2": dict(parallelism=2, execution_mode="thread"),
    "thread-4": dict(parallelism=4, execution_mode="thread"),
    "process-2": dict(parallelism=2, execution_mode="process"),
    "process-4": dict(parallelism=4, execution_mode="process"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_SCALE_ROWS", "20000")),
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument(
        "--delete-fraction",
        type=float,
        default=0.10,
        help="live-row fraction deleted per batch",
    )
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help=f"fail when the {GATED_CONFIG} speedup over the scalar "
        "reference falls below this",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help=f"with --baseline: fail when the {GATED_CONFIG} speedup "
        "drops below committed / this factor",
    )
    args = parser.parse_args(argv)

    batches = materialize_batches(args.rows, args.batches, args.delete_fraction)
    print(
        f"== parallel-scale: rows={args.rows} cols={COLS} "
        f"batches={len(batches)} rounds={args.rounds} "
        f"cpus={os.cpu_count()}"
    )

    reference_times = []
    reference_profiles = None
    for _ in range(args.rounds):
        elapsed, profiles = run_reference(args.rows, batches)
        reference_times.append(elapsed)
        if reference_profiles is None:
            reference_profiles = profiles
        elif profiles != reference_profiles:
            print("FATAL: scalar reference rounds diverged", file=sys.stderr)
            return 1
    reference_best = min(reference_times)
    print(f"   reference  {reference_best:.3f}s (scalar pointer-PLI pipeline)")

    results = {}
    for name, knobs in CONFIGS.items():
        times = []
        pool_stats = None
        for _ in range(args.rounds):
            elapsed, profiles, pool_stats = run_swan(args.rows, batches, **knobs)
            if profiles != reference_profiles:
                print(
                    f"FATAL: {name} produced a different profile than the "
                    "scalar reference",
                    file=sys.stderr,
                )
                return 1
            times.append(elapsed)
        best = min(times)
        results[name] = {
            "times_s": [round(t, 4) for t in times],
            "best_s": round(best, 4),
            "speedup_vs_reference": round(reference_best / best, 3),
            "pool": pool_stats,
        }
        print(
            f"   {name:<10} {best:.3f}s  "
            f"{results[name]['speedup_vs_reference']:.2f}x vs reference"
        )

    report = {
        "benchmark": "parallel_scale",
        "rows": args.rows,
        "columns": COLS,
        "batches": len(batches),
        "delete_fraction": args.delete_fraction,
        "rounds": args.rounds,
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "profiles_identical": True,
        "reference_best_s": round(reference_best, 4),
        "configs": results,
    }

    failed = False
    gated = results[GATED_CONFIG]["speedup_vs_reference"]
    if gated < args.min_speedup:
        print(
            f"REGRESSION: {GATED_CONFIG} speedup {gated:.2f}x is below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        failed = True
    if args.baseline and args.baseline.exists():
        committed = json.loads(args.baseline.read_text())
        reference = (
            committed.get("configs", {})
            .get(GATED_CONFIG, {})
            .get("speedup_vs_reference")
        )
        if reference is not None and gated < reference / args.max_regression:
            print(
                f"REGRESSION: {GATED_CONFIG} speedup {gated:.2f}x dropped "
                f"below committed {reference:.2f}x / {args.max_regression}",
                file=sys.stderr,
            )
            failed = True

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
