"""Ablations: the design choices DESIGN.md calls out, measured.

* look-up cache (Alg. 2) on vs off;
* delete-path PLI short-circuits (Section IV-B) on vs off;
* index quota (Alg. 4's delta) sweep.

Full sweeps: ``repro-bench ablation_cache ablation_pli ablation_quota``.
"""

import pytest

from conftest import delete_setup, insert_setup
from repro.core.deletes import DeletesHandler
from repro.core.inserts import InsertsHandler, _LookupCache
from repro.core.swan import SwanProfiler
from repro.datasets.workload import delete_batch_ids


class _ColdCache(_LookupCache):
    """A cache that never remembers anything (ablation)."""

    def largest_subset(self, mask):
        return 0, None

    def store(self, mask, entry):
        pass


class _UncachedInserts(InsertsHandler):
    def _retrieve_ids(self, muc_mask, new_rows, cache, stats):
        return super()._retrieve_ids(muc_mask, new_rows, _ColdCache(), stats)


class _BluntDeletes(DeletesHandler):
    """Always runs the complete PLI intersection (ablation)."""

    def _is_still_non_unique(self, mask, deleted, clustered, stats):
        stats.complete_checks += 1
        return self._has_surviving_duplicate(mask, deleted)


@pytest.mark.parametrize("cached", [True, False], ids=["cache", "no-cache"])
def test_lookup_cache_ablation(benchmark, cached):
    initial, batch, mucs, mnucs = insert_setup("ncvoter")

    def setup():
        profiler = SwanProfiler(initial.copy(), mucs, mnucs, maintain_plis=False)
        if not cached:
            profiler._inserts = _UncachedInserts(
                profiler.relation,
                profiler._repository,
                profiler._index_pool,
                profiler._sparse,
            )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize(
    "short_circuits", [True, False], ids=["short-circuits", "complete-checks"]
)
def test_pli_short_circuit_ablation(benchmark, short_circuits):
    relation, mucs, mnucs = delete_setup("ncvoter")
    doomed = delete_batch_ids(relation, 0.01, seed=3)

    def setup():
        profiler = SwanProfiler(relation.copy(), mucs, mnucs)
        if not short_circuits:
            profiler._deletes = _BluntDeletes(
                profiler.relation, profiler._repository, profiler._plis
            )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_deletes(doomed)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("quota", [None, 10, 20], ids=["minimal", "quota10", "quota20"])
def test_index_quota_ablation(benchmark, quota):
    initial, batch, mucs, mnucs = insert_setup("ncvoter")

    def setup():
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False
        )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
