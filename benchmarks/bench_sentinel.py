"""Invariant sentinel: sampled spot-verification vs full verification.

The sentinel runs *inside* the serving loop, so its cost is the price
of catching silent profile drift. The sampled mode checks a bounded
number of MUCs/MNUCs (Definitions 3-4 against the live relation) plus a
bounded number of row-pair agree sets; the full mode delegates to
``verify_profile(..., exhaustive=True)`` which scans every reported
mask and cross-checks the transversal duality. These benchmarks price
both against the same profiled relation so the ``sentinel_every``
cadence can be chosen with numbers, not vibes.

Run with ``pytest benchmarks/bench_sentinel.py --benchmark-only``.
"""

import pytest

from conftest import insert_setup
from repro.core.swan import SwanProfiler
from repro.service.sentinel import InvariantSentinel

DATASETS = ["ncvoter", "uniprot"]
SAMPLE_BUDGETS = [(4, 8), (12, 24), (32, 64)]
_CACHE: dict = {}


def profiler_for(dataset):
    if dataset not in _CACHE:
        initial, _batch, mucs, mnucs = insert_setup(dataset)
        _CACHE[dataset] = SwanProfiler(initial, list(mucs), list(mnucs))
    return _CACHE[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize(
    "masks,pairs", SAMPLE_BUDGETS, ids=[f"m{m}p{p}" for m, p in SAMPLE_BUDGETS]
)
def test_sentinel_sampled(benchmark, dataset, masks, pairs):
    profiler = profiler_for(dataset)
    sentinel = InvariantSentinel(
        sample_masks=masks, sample_pairs=pairs, seed=0
    )

    def run():
        return sentinel.check(profiler)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not report.full
    assert report.checked_mucs <= masks or report.checked_mucs == len(
        profiler.snapshot().mucs
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_sentinel_full(benchmark, dataset):
    profiler = profiler_for(dataset)
    sentinel = InvariantSentinel(seed=0)

    def run():
        return sentinel.check(profiler, full=True)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.full
