"""Fig. 7: delete batches (a: NCVoter, b: Uniprot, c: TPC-H).

Measures the per-batch cost of each system on a 1% delete batch (the
paper calls <= 1% the realistic regime): DUCC re-profiles the shrunken
dataset, DUCC-INC rediscovers seeded with the old minimal uniques,
GORDIAN-INC removes the tuples from its tree and rediscovers unseeded,
SWAN runs its deletes handler over the maintained PLIs. Full sweeps:
``repro-bench fig7a fig7b fig7c``.
"""

import pytest

from repro.errors import BudgetExceededError

from conftest import delete_setup
from repro.baselines.ducc import discover_ducc
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian_inc import GordianInc
from repro.core.swan import SwanProfiler
from repro.datasets.workload import delete_batch_ids

DATASETS = ["ncvoter", "uniprot", "tpch"]
DELETE_FRACTION = 0.01


def _doomed(relation):
    return delete_batch_ids(relation, DELETE_FRACTION, seed=3)


@pytest.mark.parametrize("dataset", DATASETS)
def test_swan_delete_batch(benchmark, dataset):
    relation, mucs, mnucs = delete_setup(dataset)
    doomed = _doomed(relation)

    def setup():
        return (SwanProfiler(relation.copy(), mucs, mnucs),), {}

    def run(profiler):
        return profiler.handle_deletes(doomed)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_ducc_inc_delete_batch(benchmark, dataset):
    relation, mucs, __ = delete_setup(dataset)
    doomed = _doomed(relation)

    def setup():
        return (DuccInc(relation.copy(), mucs),), {}

    def run(ducc_inc):
        return ducc_inc.handle_deletes(doomed)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_gordian_inc_delete_batch(benchmark, dataset):
    relation, __, mnucs = delete_setup(dataset)
    doomed = _doomed(relation)
    doomed_rows = [relation.row(tuple_id) for tuple_id in doomed]

    def setup():
        return (GordianInc(relation, mnucs, deadline_s=120.0),), {}

    def run(gordian):
        try:
            return gordian.handle_deletes(doomed_rows)
        except BudgetExceededError:
            pytest.skip("GORDIAN-INC exceeded its budget (see EXPERIMENTS.md)")

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_ducc_full_reprofile_after_delete(benchmark, dataset):
    relation, __, ___ = delete_setup(dataset)
    doomed = _doomed(relation)

    def setup():
        shrunk = relation.copy()
        shrunk.delete_many(doomed)
        return (shrunk,), {}

    def run(shrunk):
        return discover_ducc(shrunk)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
