#!/usr/bin/env python
"""Cross-batch partition cache + parallel fan-out speedup benchmark.

Runs the same delete-heavy workloads through two SWAN configurations --
the reference (``parallelism=0``, cache disabled) and the optimized one
(worker threads + cross-batch partition cache) -- and reports per-
scenario wall-clock times and speedups. Every batch's profile must be
bit-identical across configurations and rounds; the script aborts
otherwise, so a "fast but wrong" result can never be recorded.

Scenarios:

* ``repeated-deletes`` -- consecutive delete batches; each batch's
  derived partitions seed the next one's checks, the cache's best case.
* ``mixed``            -- delete batches with occasional small inserts
  interleaved; each insert bumps the generation and invalidates the
  cache, so this measures how quickly the cache re-earns its keep.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_parallel.py \
        [--rows 20000] [--rounds 3] [--parallelism 2] \
        [--output bench_results/BENCH_cache_parallel.json] \
        [--baseline benchmarks/baselines/bench_cache_parallel.json] \
        [--max-regression 2.0]

Exit status: 0 on success; 1 when profiles diverge or, with
``--baseline``, when a scenario's optimized runtime regressed by more
than ``--max-regression`` vs the committed baseline. Rounds are
interleaved across configurations and the minimum per configuration is
kept, so transient machine load cannot manufacture (or mask) a
regression.

Methodology: the timed region covers *only* profiler work
(``handle_inserts`` / ``handle_deletes``). Dataset generation, holistic
discovery, and workload materialization -- including the
``delete_batch_ids`` sampling, which replays the plan against a
throwaway relation up front -- all happen before the clock starts, so
a change to workload generation can never masquerade as a profiler
speedup or regression.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.swan import SwanProfiler  # noqa: E402
from repro.datasets.ncvoter import ncvoter_relation  # noqa: E402
from repro.datasets.workload import delete_batch_ids  # noqa: E402

COLS = 20
SEED = 7
DELETE_FRACTION = 0.02


def _insert_rows(count: int):
    donor = ncvoter_relation(count, COLS, seed=SEED + 92)
    return [donor.row(tuple_id) for tuple_id in donor.iter_ids()]


def scenario_repeated_deletes(rows: int):
    """8 consecutive delete batches of DELETE_FRACTION each."""
    return [("delete", seed) for seed in range(8)]


def scenario_mixed(rows: int):
    """Delete-heavy traffic with small insert batches interleaved."""
    plan = []
    for step in range(10):
        if step in (4, 9):
            plan.append(("insert", step))
        else:
            plan.append(("delete", step))
    return plan


SCENARIOS = {
    "repeated-deletes": scenario_repeated_deletes,
    "mixed": scenario_mixed,
}


_DISCOVERY_CACHE: dict[int, tuple[list[int], list[int]]] = {}


def _initial_profile(rows: int):
    """The holistic profile of the (deterministic) initial relation.

    Discovery is by far the most expensive part of a run and its result
    is identical for every round and configuration, so it is computed
    once per row count and replayed into each profiler.
    """
    if rows not in _DISCOVERY_CACHE:
        from repro.profiling.discovery import discover

        relation = ncvoter_relation(rows, COLS, seed=SEED)
        _DISCOVERY_CACHE[rows] = discover(relation, "ducc")
    mucs, mnucs = _DISCOVERY_CACHE[rows]
    return lambda relation: (list(mucs), list(mnucs))


def materialize_plan(rows: int, plan):
    """Resolve a scenario plan into concrete batches ahead of time.

    ``delete_batch_ids`` samples the *current* live IDs, so the plan is
    replayed against a throwaway relation that mirrors exactly what the
    profilers will see. Every timed run then applies identical,
    pre-sampled batches -- the sampling cost (and any future change to
    it) stays outside the timed region.
    """
    relation = ncvoter_relation(rows, COLS, seed=SEED)
    inserts = _insert_rows(200)
    batches = []
    cursor = 0
    for action, step in plan:
        if action == "insert":
            batch = inserts[cursor : cursor + 40]
            cursor += 40
            relation.insert_many(batch)
            batches.append(("insert", batch))
        else:
            doomed = delete_batch_ids(relation, DELETE_FRACTION, seed=100 + step)
            relation.delete_many(doomed)
            batches.append(("delete", doomed))
    return batches


def run_once(rows: int, batches, parallelism: int, cache_budget_bytes: int):
    relation = ncvoter_relation(rows, COLS, seed=SEED)
    profiler = SwanProfiler.profile(
        relation,
        algorithm=_initial_profile(rows),
        parallelism=parallelism,
        cache_budget_bytes=cache_budget_bytes,
    )
    profiles = []
    started = time.perf_counter()
    try:
        for action, payload in batches:
            if action == "insert":
                outcome = profiler.handle_inserts(payload)
            else:
                outcome = profiler.handle_deletes(payload)
            profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
        elapsed = time.perf_counter() - started
        return elapsed, profiles, profiler.cache_stats(), profiler.pool_stats()
    finally:
        profiler.close()


def run_scenario(name: str, rows: int, rounds: int, parallelism: int, budget: int):
    plan = SCENARIOS[name](rows)
    batches = materialize_plan(rows, plan)
    configs = {
        "baseline": dict(parallelism=0, cache_budget_bytes=0),
        "optimized": dict(parallelism=parallelism, cache_budget_bytes=budget),
    }
    times = {label: [] for label in configs}
    stats = {}
    reference_profiles = None
    for _ in range(rounds):
        for label, knobs in configs.items():
            elapsed, profiles, cache_stats, pool_stats = run_once(
                rows, batches, **knobs
            )
            times[label].append(elapsed)
            if reference_profiles is None:
                reference_profiles = profiles
            elif profiles != reference_profiles:
                print(
                    f"FATAL: {name}/{label} produced a different profile "
                    "than the reference run",
                    file=sys.stderr,
                )
                raise SystemExit(1)
            stats[label] = {"cache": cache_stats, "pool": pool_stats}
    best = {label: min(series) for label, series in times.items()}
    return {
        "plan": [f"{action}:{step}" for action, step in plan],
        "batches": len(plan),
        "times_s": {label: [round(t, 4) for t in series] for label, series in times.items()},
        "best_s": {label: round(t, 4) for label, t in best.items()},
        "speedup": round(best["baseline"] / best["optimized"], 3),
        "profiles_identical": True,
        "optimized_stats": stats.get("optimized"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=int(os.environ.get("REPRO_BENCH_CACHE_ROWS", "20000"))
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--parallelism", type=int, default=2)
    parser.add_argument("--cache-budget-mb", type=int, default=64)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when optimized runtime exceeds baseline * this factor",
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "cache_parallel",
        "rows": args.rows,
        "columns": COLS,
        "rounds": args.rounds,
        "parallelism": args.parallelism,
        "cache_budget_mb": args.cache_budget_mb,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": {},
    }
    for name in SCENARIOS:
        print(f"== scenario: {name} (rows={args.rows}, rounds={args.rounds})")
        result = run_scenario(
            name,
            args.rows,
            args.rounds,
            args.parallelism,
            args.cache_budget_mb * 1024 * 1024,
        )
        report["scenarios"][name] = result
        print(
            f"   baseline {result['best_s']['baseline']:.3f}s"
            f"  optimized {result['best_s']['optimized']:.3f}s"
            f"  speedup {result['speedup']:.2f}x"
        )

    failed = False
    if args.baseline and args.baseline.exists():
        committed = json.loads(args.baseline.read_text())
        for name, result in report["scenarios"].items():
            reference = committed.get("scenarios", {}).get(name)
            if reference is None:
                continue
            limit = reference["best_s"]["optimized"] * args.max_regression
            if result["best_s"]["optimized"] > limit:
                print(
                    f"REGRESSION: {name} optimized runtime "
                    f"{result['best_s']['optimized']:.3f}s exceeds "
                    f"{limit:.3f}s ({args.max_regression}x committed baseline)",
                    file=sys.stderr,
                )
                failed = True

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
