#!/usr/bin/env python
"""Multi-tenant HTTP ingest throughput and latency benchmark.

Stands up the real stack -- ``TenantManager`` behind ``ReproServerApp``
on a loopback socket -- and drives insert batches over HTTP with one
client thread per tenant. Two fleet sizes are compared (1 tenant vs 4
tenants) at the same *total* batch volume, so the scenario pair answers
the operational question directly: what does co-hosting four relations
behind one server cost a single relation's ingest path?

Reported per scenario:

* ``batches_per_sec`` -- aggregate admitted-batch throughput, wall
  clock from the first POST to the last flush acknowledgement.
* ``latency`` -- p50/p99 ingest-to-queryable seconds, read back from
  each tenant's ``ingest_to_applied_seconds`` histogram via
  ``GET /tenants/{id}/status`` (enqueue timestamp to profile applied).
  The scenario-level numbers are the worst (max) across tenants.

Every run ends with a correctness guard: each tenant must be serving,
hold exactly ``initial + batches * rows_per_batch`` live rows, and have
an empty dead-letter queue -- a "fast but wrong" run aborts the script.

Usage::

    PYTHONPATH=src python benchmarks/bench_http_ingest.py \
        [--batches 32] [--rows-per-batch 20] [--rounds 2] \
        [--output bench_results/BENCH_http_ingest.json] \
        [--baseline benchmarks/baselines/bench_http_ingest.json] \
        [--max-regression 3.0]

Exit status: 0 on success; 1 when the correctness guard trips or, with
``--baseline``, when a scenario's throughput fell below ``committed /
--max-regression``. Rounds are interleaved across scenarios and the
best round is kept, so transient machine load cannot manufacture (or
mask) a regression.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import shutil
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server.app import ReproServerApp  # noqa: E402
from repro.server.http import serve_in_thread  # noqa: E402
from repro.tenants.manager import TenantManager  # noqa: E402

COLUMNS = [f"c{i}" for i in range(8)]
INITIAL_ROWS = 40
SEED = 11

# Total admitted batches is constant across scenarios; the 4-tenant
# fleet splits the same volume four ways.
FLEET_SIZES = (1, 4)


def _request(url: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _make_rows(rng: random.Random, count: int) -> list[list[str]]:
    return [
        [str(rng.randrange(10)) for _ in COLUMNS] for _ in range(count)
    ]


def _drive_tenant(
    url: str,
    tenant_id: str,
    batches: list[list[list[str]]],
    errors: list[BaseException],
) -> None:
    try:
        for index, rows in enumerate(batches):
            status, doc = _request(
                url,
                "POST",
                f"/tenants/{tenant_id}/batches",
                {"kind": "insert", "rows": rows, "token": f"{tenant_id}-{index}"},
            )
            while status == 429:  # admission control, not an error: retry
                time.sleep(0.005)
                status, doc = _request(
                    url,
                    "POST",
                    f"/tenants/{tenant_id}/batches",
                    {
                        "kind": "insert",
                        "rows": rows,
                        "token": f"{tenant_id}-{index}",
                    },
                )
            if status not in (200, 202):
                raise AssertionError(f"{tenant_id} batch {index}: {status} {doc}")
    except BaseException as exc:  # surfaced to the main thread
        errors.append(exc)


def run_once(
    fleet_size: int, total_batches: int, rows_per_batch: int, workdir: str
) -> dict[str, object]:
    root = tempfile.mkdtemp(prefix=f"http-ingest-{fleet_size}-", dir=workdir)
    manager = TenantManager(str(Path(root) / "fleet"))
    handle = serve_in_thread(ReproServerApp(manager))
    url = handle.url
    per_tenant = total_batches // fleet_size
    tenant_ids = [f"bench-{i}" for i in range(fleet_size)]
    try:
        workloads: dict[str, list[list[list[str]]]] = {}
        for slot, tenant_id in enumerate(tenant_ids):
            rng = random.Random(SEED + slot)
            status, doc = _request(
                url,
                "POST",
                "/tenants",
                {
                    "tenant_id": tenant_id,
                    "config": {
                        "columns": COLUMNS,
                        "algorithm": "bruteforce",
                        "fsync": False,
                    },
                    "rows": _make_rows(rng, INITIAL_ROWS),
                },
            )
            if status != 201:
                raise AssertionError(f"create {tenant_id}: {status} {doc}")
            workloads[tenant_id] = [
                _make_rows(rng, rows_per_batch) for _ in range(per_tenant)
            ]

        errors: list[BaseException] = []
        threads = [
            threading.Thread(
                target=_drive_tenant, args=(url, tid, workloads[tid], errors)
            )
            for tid in tenant_ids
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise AssertionError(f"client thread failed: {errors[0]}")
        for tenant_id in tenant_ids:
            status, doc = _request(url, "POST", f"/tenants/{tenant_id}/flush", {})
            if status != 200 or not doc.get("flushed"):
                raise AssertionError(f"flush {tenant_id}: {status} {doc}")
        elapsed = time.perf_counter() - started

        expected_rows = INITIAL_ROWS + per_tenant * rows_per_batch
        latencies: dict[str, dict[str, float]] = {}
        for tenant_id in tenant_ids:
            status, doc = _request(url, "GET", f"/tenants/{tenant_id}/status")
            if status != 200:
                raise AssertionError(f"status {tenant_id}: {status}")
            service = doc["service"]
            if doc["health"] != "serving":
                raise AssertionError(f"{tenant_id} not serving: {doc['health']}")
            if service["dead_letters"] != 0:
                raise AssertionError(f"{tenant_id} has dead letters")
            live_rows = service["gauges"]["live_rows"]
            if live_rows != expected_rows:
                raise AssertionError(
                    f"{tenant_id} live_rows {live_rows} != {expected_rows}"
                )
            summary = service["histograms"]["ingest_to_applied_seconds"]
            latencies[tenant_id] = {
                "count": summary["count"],
                "p50_s": round(summary["p50"], 6),
                "p99_s": round(summary["p99"], 6),
            }
        return {
            "wall_s": elapsed,
            "batches_per_sec": (per_tenant * fleet_size) / elapsed,
            "per_tenant_latency": latencies,
            "p50_s": max(entry["p50_s"] for entry in latencies.values()),
            "p99_s": max(entry["p99_s"] for entry in latencies.values()),
        }
    finally:
        handle.close()
        manager.close_all()
        shutil.rmtree(root, ignore_errors=True)


def run_scenario(
    fleet_size: int,
    total_batches: int,
    rows_per_batch: int,
    rounds: int,
    workdir: str,
) -> dict[str, object]:
    results = [
        run_once(fleet_size, total_batches, rows_per_batch, workdir)
        for _ in range(rounds)
    ]
    best = min(results, key=lambda r: r["wall_s"])
    return {
        "tenants": fleet_size,
        "batches_per_tenant": total_batches // fleet_size,
        "rows_per_batch": rows_per_batch,
        "wall_s": [round(r["wall_s"], 4) for r in results],
        "best_wall_s": round(best["wall_s"], 4),
        "batches_per_sec": round(best["batches_per_sec"], 2),
        "latency": {
            "p50_s": best["p50_s"],
            "p99_s": best["p99_s"],
            "per_tenant": best["per_tenant_latency"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batches",
        type=int,
        default=32,
        help="total admitted batches per scenario (split across the fleet)",
    )
    parser.add_argument("--rows-per-batch", type=int, default=20)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=3.0,
        help="fail when throughput drops below baseline / this factor",
    )
    args = parser.parse_args(argv)
    if args.batches % max(FLEET_SIZES) != 0:
        parser.error(f"--batches must be a multiple of {max(FLEET_SIZES)}")

    report = {
        "benchmark": "http_ingest",
        "columns": len(COLUMNS),
        "initial_rows": INITIAL_ROWS,
        "total_batches": args.batches,
        "rows_per_batch": args.rows_per_batch,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": {},
    }
    workdir = tempfile.mkdtemp(prefix="bench-http-ingest-")
    try:
        for fleet_size in FLEET_SIZES:
            name = f"tenants-{fleet_size}"
            print(
                f"== scenario: {name} "
                f"({args.batches} batches x {args.rows_per_batch} rows, "
                f"rounds={args.rounds})"
            )
            result = run_scenario(
                fleet_size, args.batches, args.rows_per_batch,
                args.rounds, workdir,
            )
            report["scenarios"][name] = result
            print(
                f"   {result['batches_per_sec']:.1f} batches/s"
                f"  p50 {result['latency']['p50_s'] * 1000:.1f}ms"
                f"  p99 {result['latency']['p99_s'] * 1000:.1f}ms"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    failed = False
    if args.baseline and args.baseline.exists():
        committed = json.loads(args.baseline.read_text())
        for name, result in report["scenarios"].items():
            reference = committed.get("scenarios", {}).get(name)
            if reference is None:
                continue
            floor = reference["batches_per_sec"] / args.max_regression
            if result["batches_per_sec"] < floor:
                print(
                    f"REGRESSION: {name} throughput "
                    f"{result['batches_per_sec']:.1f} batches/s fell below "
                    f"{floor:.1f} (committed {reference['batches_per_sec']:.1f}"
                    f" / {args.max_regression}x allowance)",
                    file=sys.stderr,
                )
                failed = True

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
