"""Fig. 5: SWAN as a holistic approach on growing TPC-H increments.

DUCC re-profiles initial+increment; SWAN processes only the increment
on top of an existing profile. The paper's claim: SWAN wins at every
increment size, letting DUCC+SWAN profile datasets DUCC alone cannot.
Full sweep: ``repro-bench fig5``.
"""

import pytest

from conftest import SEED, _GENERATORS
from repro.baselines.ducc import discover_ducc
from repro.core.swan import SwanProfiler
from repro.datasets.workload import split_initial_and_inserts

INITIAL_ROWS = 1000
INCREMENTS = [0.2, 0.6, 1.0]
_CACHE: dict = {}


def holistic_setup():
    if "data" not in _CACHE:
        total = INITIAL_ROWS + int(INITIAL_ROWS * 1.02)
        relation = _GENERATORS["tpch"](total, 16)
        workload = split_initial_and_inserts(relation, INITIAL_ROWS, [1.0], seed=SEED)
        mucs, mnucs = discover_ducc(workload.initial)
        _CACHE["data"] = (workload.initial, workload.insert_batches[0], mucs, mnucs)
    return _CACHE["data"]


@pytest.mark.parametrize("increment", INCREMENTS)
def test_swan_increment(benchmark, increment):
    initial, all_inserts, mucs, mnucs = holistic_setup()
    chunk = all_inserts[: int(INITIAL_ROWS * increment)]

    def setup():
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=8, maintain_plis=False
        )
        return (profiler,), {}

    def run(profiler):
        return profiler.handle_inserts(chunk)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("increment", INCREMENTS)
def test_ducc_holistic(benchmark, increment):
    initial, all_inserts, __, ___ = holistic_setup()
    chunk = all_inserts[: int(INITIAL_ROWS * increment)]

    def setup():
        grown = initial.copy()
        grown.insert_many(chunk)
        return (grown,), {}

    def run(grown):
        return discover_ducc(grown)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
