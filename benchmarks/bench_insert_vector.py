#!/usr/bin/env python
"""Vectorized insert-path speedup benchmark (dictionary-encoded core).

Runs the same insert-heavy NCVoter-style workload through two insert
pipelines over identical initial relations and profiles:

* ``scalar``     -- the frozen pre-vectorization reference
  (:mod:`repro.core.reference`): ``dict[value] -> set`` postings,
  per-tuple index maintenance, tuple-hash duplicate grouping.
* ``vectorized`` -- the live :class:`~repro.core.swan.SwanProfiler`
  insert path: code-keyed sorted numpy postings, one vectorized index
  pass per column, lexsort duplicate grouping.

Every batch's (MUCS, MNUCS) must be bit-identical across the two
pipelines and across rounds; the script aborts otherwise, so a "fast
but wrong" result can never be recorded.

Usage::

    PYTHONPATH=src python benchmarks/bench_insert_vector.py \
        [--rows 20000] [--batches 10] [--batch-rows 200] [--rounds 3] \
        [--output bench_results/BENCH_insert_vector.json] \
        [--baseline benchmarks/baselines/bench_insert_vector.json] \
        [--max-regression 2.0] [--min-speedup 0]

Exit status: 0 on success; 1 when profiles diverge, when the speedup
falls below ``--min-speedup``, or, with ``--baseline``, when the
vectorized runtime regressed by more than ``--max-regression`` vs the
committed baseline. Rounds are interleaved across pipelines and the
minimum per pipeline is kept, so transient machine load cannot
manufacture (or mask) a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.reference import ReferenceInsertRunner  # noqa: E402
from repro.core.swan import SwanProfiler  # noqa: E402
from repro.datasets.ncvoter import ncvoter_relation  # noqa: E402

COLS = 20
SEED = 7

_DISCOVERY_CACHE: dict[int, tuple[list[int], list[int], list[int]]] = {}


def _setup(rows: int) -> tuple[list[int], list[int], list[int]]:
    """(mucs, mnucs, index_columns) of the deterministic initial relation.

    Holistic discovery dominates a run and is identical for every round
    and pipeline, so it is computed once per row count; Algorithm 3's
    index cover is captured from the same profiler so both pipelines
    probe exactly the same indexes.
    """
    if rows not in _DISCOVERY_CACHE:
        relation = ncvoter_relation(rows, COLS, seed=SEED)
        profiler = SwanProfiler.profile(
            relation, algorithm="ducc", maintain_plis=False
        )
        profile = profiler.snapshot()
        index_columns = sorted(profiler.indexed_columns)
        profiler.close()
        _DISCOVERY_CACHE[rows] = (
            list(profile.mucs),
            list(profile.mnucs),
            index_columns,
        )
    return _DISCOVERY_CACHE[rows]


def _insert_batches(batches: int, batch_rows: int) -> list[list[tuple]]:
    """Insert-heavy traffic from a donor with overlapping value domains."""
    donor = ncvoter_relation(batches * batch_rows, COLS, seed=SEED + 92)
    rows = [donor.row(tuple_id) for tuple_id in donor.iter_ids()]
    return [
        rows[index * batch_rows : (index + 1) * batch_rows]
        for index in range(batches)
    ]


def run_once(rows: int, batches: list[list[tuple]], pipeline: str):
    mucs, mnucs, index_columns = _setup(rows)
    relation = ncvoter_relation(rows, COLS, seed=SEED)
    if pipeline == "vectorized":
        driver = SwanProfiler(
            relation,
            mucs,
            mnucs,
            index_columns=index_columns,
            maintain_plis=False,
        )
    else:
        driver = ReferenceInsertRunner(relation, mucs, mnucs, index_columns)
    profiles = []
    started = time.perf_counter()
    try:
        for batch in batches:
            outcome = driver.handle_inserts(batch)
            profiles.append((sorted(outcome.mucs), sorted(outcome.mnucs)))
        elapsed = time.perf_counter() - started
        return elapsed, profiles
    finally:
        if pipeline == "vectorized":
            driver.close()


def run_benchmark(rows: int, n_batches: int, batch_rows: int, rounds: int):
    batches = _insert_batches(n_batches, batch_rows)
    times: dict[str, list[float]] = {"scalar": [], "vectorized": []}
    reference_profiles = None
    for _ in range(rounds):
        for pipeline in times:
            elapsed, profiles = run_once(rows, batches, pipeline)
            times[pipeline].append(elapsed)
            if reference_profiles is None:
                reference_profiles = profiles
            elif profiles != reference_profiles:
                print(
                    f"FATAL: {pipeline} produced a different per-batch "
                    "profile than the reference run",
                    file=sys.stderr,
                )
                raise SystemExit(1)
    best = {pipeline: min(series) for pipeline, series in times.items()}
    return {
        "batches": n_batches,
        "batch_rows": batch_rows,
        "times_s": {
            pipeline: [round(t, 4) for t in series]
            for pipeline, series in times.items()
        },
        "best_s": {pipeline: round(t, 4) for pipeline, t in best.items()},
        "speedup": round(best["scalar"] / best["vectorized"], 3),
        "profiles_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_INSERT_ROWS", "20000")),
    )
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--batch-rows", type=int, default=200)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when vectorized runtime exceeds baseline * this factor",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail when scalar/vectorized speedup falls below this",
    )
    args = parser.parse_args(argv)

    print(
        f"== insert-vector benchmark (rows={args.rows}, "
        f"batches={args.batches}x{args.batch_rows}, rounds={args.rounds})"
    )
    result = run_benchmark(args.rows, args.batches, args.batch_rows, args.rounds)
    report = {
        "benchmark": "insert_vector",
        "rows": args.rows,
        "columns": COLS,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "machine": platform.machine(),
        **result,
    }
    print(
        f"   scalar {result['best_s']['scalar']:.3f}s"
        f"  vectorized {result['best_s']['vectorized']:.3f}s"
        f"  speedup {result['speedup']:.2f}x"
    )

    failed = False
    if args.min_speedup and result["speedup"] < args.min_speedup:
        print(
            f"REGRESSION: speedup {result['speedup']:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.baseline and args.baseline.exists():
        committed = json.loads(args.baseline.read_text())
        limit = committed["best_s"]["vectorized"] * args.max_regression
        if result["best_s"]["vectorized"] > limit:
            print(
                f"REGRESSION: vectorized runtime "
                f"{result['best_s']['vectorized']:.3f}s exceeds "
                f"{limit:.3f}s ({args.max_regression}x committed baseline)",
                file=sys.stderr,
            )
            failed = True

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
