"""Unit tests for the dry-run preview APIs."""

import pytest

from repro.core.swan import SwanProfiler
from repro.errors import ProfileStateError
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def profiler():
    schema = Schema(["Name", "Phone", "Age"])
    relation = Relation.from_rows(
        schema,
        [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
    )
    return SwanProfiler.profile(relation, algorithm="bruteforce")


class TestPreviewInserts:
    def test_preview_matches_handle(self, profiler):
        batch = [("Payne", "245", "31")]
        previewed = profiler.preview_inserts(batch)
        assert previewed == profiler.handle_inserts(batch)

    def test_preview_commits_nothing(self, profiler):
        before = profiler.snapshot()
        rows_before = len(profiler.relation)
        profiler.preview_inserts([("Payne", "245", "31")])
        assert profiler.snapshot() == before
        assert len(profiler.relation) == rows_before
        # indexes untouched: a later real insert still detects the dup
        profile = profiler.handle_inserts([("Payne", "245", "31")])
        assert 0b010 not in profile.mucs  # {Phone} broken exactly once

    def test_preview_then_different_batch(self, profiler):
        profiler.preview_inserts([("X", "999", "1")])
        profile = profiler.handle_inserts([("Payne", "245", "31")])
        names = {
            profiler.relation.schema.combination(mask).names
            for mask in profile.mucs
        }
        assert names == {("Name", "Age"), ("Phone", "Age")}


class TestPreviewDeletes:
    def test_preview_matches_handle(self, profiler):
        previewed = profiler.preview_deletes([2])
        assert previewed == profiler.handle_deletes([2])

    def test_preview_commits_nothing(self, profiler):
        before = profiler.snapshot()
        profiler.preview_deletes([2])
        assert profiler.snapshot() == before
        assert profiler.relation.is_live(2)

    def test_requires_plis(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("1",), ("2",)])
        profiler = SwanProfiler(relation, [0b1], [0], maintain_plis=False)
        with pytest.raises(ProfileStateError):
            profiler.preview_deletes([0])
