"""Unit tests for the unique-constraint monitor."""

import pytest

from repro.core.monitor import EventKind, UniqueConstraintMonitor
from repro.core.swan import SwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def monitor():
    schema = Schema(["Name", "Phone", "Age"])
    relation = Relation.from_rows(
        schema,
        [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
    )
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    return UniqueConstraintMonitor(profiler)


class TestWatching:
    def test_key_broken_event(self, monitor):
        monitor.watch(["Phone"])
        events = monitor.apply_inserts([("Payne", "245", "31")])
        kinds = [event.kind for event in events]
        assert EventKind.KEY_BROKEN in kinds
        assert EventKind.PROFILE_CHANGED in kinds

    def test_key_restored_event(self, monitor):
        monitor.watch(["Name"], label="name key")
        # Name is initially non-unique; deleting tuple 2 restores it.
        events = monitor.apply_deletes([2])
        restored = [e for e in events if e.kind is EventKind.KEY_RESTORED]
        assert len(restored) == 1
        assert restored[0].label == "name key"

    def test_quiet_batch_emits_nothing_for_keys(self, monitor):
        monitor.watch(["Phone"])
        events = monitor.apply_inserts([("New", "999", "77")])
        assert all(event.kind is not EventKind.KEY_BROKEN for event in events)

    def test_history_accumulates(self, monitor):
        monitor.watch(["Phone"])
        monitor.apply_inserts([("Payne", "245", "31")])
        monitor.apply_deletes([2])
        assert len(monitor.history) >= 2
        assert monitor.history[0].batch_number == 1

    def test_watch_by_index_and_labels(self, monitor):
        monitor.watch([1])
        assert monitor.watched_labels() == ["{Phone}"]

    def test_event_str(self, monitor):
        monitor.watch(["Phone"])
        events = monitor.apply_inserts([("Payne", "245", "31")])
        text = str(events[0])
        assert "batch 1" in text
        assert "key_broken" in text
