"""Unit tests for the duplicate manager and duplicate groups."""

from repro.core.duplicates import DuplicateGroup, DuplicateManager, batch_rows


class TestDuplicateManager:
    def test_groups_by_full_projection(self):
        old = {0: ("a", "1", "x"), 1: ("b", "2", "y")}
        new = {10: ("a", "1", "z"), 11: ("c", "3", "w")}
        manager = DuplicateManager(old, new)
        groups = manager.groups_for(0b011, candidate_old_ids=[0, 1])
        assert len(groups) == 1
        group = groups[0]
        assert group.key == ("a", "1")
        assert {tid for tid, _ in group.members} == {0, 10}

    def test_partial_duplicates_dropped(self):
        # tuple 0 agrees with the insert only on column 0, not column 1
        old = {0: ("a", "9", "x")}
        new = {10: ("a", "1", "z")}
        manager = DuplicateManager(old, new)
        assert manager.groups_for(0b011, [0]) == []

    def test_intra_batch_duplicates_found_without_candidates(self):
        new = {10: ("a", "1", "x"), 11: ("a", "1", "y")}
        manager = DuplicateManager({}, new)
        groups = manager.groups_for(0b011, [])
        assert len(groups) == 1
        assert {tid for tid, _ in groups[0].members} == {10, 11}

    def test_unaffected_muc_has_no_groups(self):
        old = {0: ("a", "1", "x")}
        new = {10: ("b", "2", "y")}
        manager = DuplicateManager(old, new)
        assert manager.groups_for(0b011, [0]) == []

    def test_retrieved_count(self):
        manager = DuplicateManager({0: ("a",)}, {1: ("b",)})
        assert manager.retrieved_count == 1


class TestAgreeSets:
    def test_pairwise_agree_sets(self):
        group = DuplicateGroup(
            ("a",),
            [(0, ("a", "1", "x")), (10, ("a", "1", "y")), (11, ("a", "2", "x"))],
        )
        # pairs: (0,10) agree on cols 0,1; (0,11) agree on 0,2; (10,11) on 0
        assert group.agree_sets() == {0b011, 0b101, 0b001}

    def test_identical_rows_collapse(self):
        group = DuplicateGroup(
            ("a",), [(0, ("a", "1")), (10, ("a", "1")), (11, ("a", "1"))]
        )
        assert group.agree_sets() == {0b11}

    def test_mixed_identical_and_different(self):
        group = DuplicateGroup(
            ("a",), [(0, ("a", "1")), (10, ("a", "1")), (11, ("a", "2"))]
        )
        assert group.agree_sets() == {0b11, 0b01}


def test_batch_rows_assigns_sequential_ids():
    rows = batch_rows([("a",), ("b",)], first_id=5)
    assert rows == {5: ("a",), 6: ("b",)}
