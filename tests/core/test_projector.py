"""Unit tests for the C-speed projection helper."""

from repro.core.duplicates import projector


class TestProjector:
    def test_empty(self):
        assert projector(())(("a", "b")) == ()

    def test_single_index_returns_tuple(self):
        assert projector((1,))(("a", "b", "c")) == ("b",)

    def test_multi_index(self):
        assert projector((0, 2))(("a", "b", "c")) == ("a", "c")

    def test_order_preserved(self):
        assert projector((2, 0))(("a", "b", "c")) == ("c", "a")

    def test_keys_are_hashable(self):
        bucket = {}
        project = projector((0, 1))
        bucket[project(("x", "y", "z"))] = 1
        assert bucket[("x", "y")] == 1
