"""Unit tests for the deletes handler (Algorithm 6)."""

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.deletes import DeletesHandler, capture_rows
from repro.core.repository import ProfileRepository
from repro.core.swan import SwanProfiler
from repro.storage.pli import PositionListIndex
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def build_handler(relation, mucs, mnucs):
    repository = ProfileRepository(mucs, mnucs)
    plis = {
        column: PositionListIndex.for_column(relation, column)
        for column in range(relation.n_columns)
    }
    return DeletesHandler(relation, repository, plis)


@pytest.fixture
def persons():
    schema = Schema(["Name", "Phone", "Age"])
    return Relation.from_rows(
        schema,
        [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
    )


class TestHandle:
    def test_empty_batch_is_noop(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100])
        outcome = handler.handle({})
        assert outcome.mucs == [0b010, 0b101]
        assert outcome.stats.batch_size == 0

    def test_delete_turning_mnucs(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100])
        outcome = handler.handle(capture_rows(persons, [2]))
        assert sorted(outcome.mucs) == [0b001, 0b010, 0b100]
        assert outcome.mnucs == [0]
        assert outcome.stats.turned_mnucs == 2

    def test_unaffected_delete_short_circuits(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(
            schema, [("x", "1"), ("x", "2"), ("y", "3"), ("z", "4")]
        )
        # MUCS: {b}; MNUCS: {a}
        handler = build_handler(relation, [0b10], [0b01])
        # tuple 3 ('z') holds a unique value in column a: deleting it
        # cannot affect the duplicates of {a}.
        outcome = handler.handle(capture_rows(relation, [3]))
        assert outcome.mucs == [0b10]
        assert outcome.mnucs == [0b01]
        assert outcome.stats.unaffected_short_circuits == 1
        assert outcome.stats.turned_mnucs == 0

    def test_survivor_short_circuit(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(
            schema, [("x", "1"), ("x", "2"), ("x", "3"), ("y", "4")]
        )
        handler = build_handler(relation, [0b10], [0b01])
        # deleting one of three 'x' tuples leaves a surviving pair
        outcome = handler.handle(capture_rows(relation, [0]))
        assert outcome.mucs == [0b10]
        assert outcome.mnucs == [0b01]
        assert outcome.stats.survivor_short_circuits == 1

    def test_delete_whole_duplicate_group(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(
            schema, [("x", "1"), ("x", "2"), ("y", "3")]
        )
        handler = build_handler(relation, [0b10], [0b01])
        outcome = handler.handle(capture_rows(relation, [0, 1]))
        # only ('y','3') remains: with a single live tuple even the
        # empty combination is unique, and nothing is non-unique
        assert outcome.mucs == [0]
        assert outcome.mnucs == []

    def test_new_muc_below_old_muc_demotes_it(self):
        """Deleting can make a subset of an old MUC unique, so the old
        MUC stops being minimal."""
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(
            schema, [("x", "1"), ("x", "2"), ("y", "1")]
        )
        # MUCS: {a,b}; MNUCS: {a}, {b}
        handler = build_handler(relation, [0b11], [0b01, 0b10])
        outcome = handler.handle(capture_rows(relation, [1]))
        # rows: (x,1), (y,1): a unique, b non-unique
        assert outcome.mucs == [0b01]
        assert outcome.mnucs == [0b10]


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_deletes(self, seed):
        import random

        rng = random.Random(100 + seed)
        schema = Schema([f"c{i}" for i in range(4)])
        rows = [
            tuple(str(rng.randrange(3)) for _ in range(4))
            for _ in range(rng.randint(4, 18))
        ]
        relation = Relation.from_rows(schema, rows)
        profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
        live = list(relation.iter_ids())
        doomed = rng.sample(live, rng.randint(1, len(live) - 2))
        profile = profiler.handle_deletes(doomed)
        expected_mucs, expected_mnucs = discover_bruteforce(relation)
        assert sorted(profile.mucs) == sorted(expected_mucs)
        assert sorted(profile.mnucs) == sorted(expected_mnucs)
