"""Unit tests for the SwanProfiler facade."""

import pytest

from repro.core.swan import SwanProfiler
from repro.errors import ProfileStateError
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def persons():
    schema = Schema(["Name", "Phone", "Age"])
    return Relation.from_rows(
        schema,
        [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
    )


class TestBootstrap:
    def test_profile_with_algorithm_name(self, persons):
        profiler = SwanProfiler.profile(persons, algorithm="gordian")
        assert {combo.names for combo in profiler.minimal_uniques()} == {
            ("Phone",),
            ("Name", "Age"),
        }

    def test_profile_with_callable(self, persons):
        from repro.baselines.bruteforce import discover_bruteforce

        profiler = SwanProfiler.profile(persons, algorithm=discover_bruteforce)
        assert len(profiler.minimal_uniques()) == 2

    def test_explicit_profile(self, persons):
        profiler = SwanProfiler(persons, [0b010, 0b101], [0b001, 0b100])
        assert profiler.is_unique(["Phone"])
        assert not profiler.is_unique(["Name"])
        assert profiler.is_unique(["Name", "Age"])

    def test_index_columns_override(self, persons):
        profiler = SwanProfiler(
            persons, [0b010, 0b101], [0b001, 0b100], index_columns=[0, 1, 2]
        )
        assert profiler.indexed_columns == {0, 1, 2}

    def test_default_indexes_cover_all_mucs(self, persons):
        profiler = SwanProfiler(persons, [0b010, 0b101], [0b001, 0b100])
        indexed = profiler.indexed_columns
        for mask in (0b010, 0b101):
            assert any(mask >> column & 1 for column in indexed)


class TestInsertOnlyMode:
    def test_deletes_rejected_without_plis(self, persons):
        profiler = SwanProfiler(
            persons, [0b010, 0b101], [0b001, 0b100], maintain_plis=False
        )
        profiler.handle_inserts([("New", "1", "2")])
        with pytest.raises(ProfileStateError):
            profiler.handle_deletes([0])


class TestIndexMaintenance:
    def test_inserts_update_indexes(self, persons):
        profiler = SwanProfiler(persons, [0b010, 0b101], [0b001, 0b100])
        profiler.handle_inserts([("Kim", "111", "40")])
        # a second batch duplicating the first must see it via indexes
        profile = profiler.handle_inserts([("Kim", "111", "40")])
        assert not profiler.is_unique(["Phone"])
        assert 0b010 not in profile.mucs

    def test_delete_triggers_cover_extension(self):
        """After deletes create a brand-new single-column MUC outside
        the current cover, the facade must index it."""
        schema = Schema(["a", "b", "c"])
        relation = Relation.from_rows(
            schema,
            [("x", "1", "p"), ("x", "2", "p"), ("y", "3", "q"), ("z", "3", "q")],
        )
        profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
        # delete to make column a unique (it was non-unique)
        profiler.handle_deletes([1])
        for mask in profiler.snapshot().mucs:
            assert any(mask >> column & 1 for column in profiler.indexed_columns)

    def test_mixed_workload_stays_exact(self, persons):
        from repro.baselines.bruteforce import discover_bruteforce

        profiler = SwanProfiler.profile(persons, algorithm="bruteforce")
        profiler.handle_inserts([("Payne", "245", "31"), ("Zed", "000", "99")])
        profiler.handle_deletes([1, 3])
        profiler.handle_inserts([("Lee", "345", "20")])
        expected = discover_bruteforce(persons)
        snapshot = profiler.snapshot()
        assert list(snapshot.mucs) == sorted(expected[0])
        assert list(snapshot.mnucs) == sorted(expected[1])


class TestBatchValidation:
    def test_malformed_batch_rejected_atomically(self, persons):
        from repro.errors import ArityError

        profiler = SwanProfiler.profile(persons, algorithm="bruteforce")
        before = profiler.snapshot()
        rows_before = len(profiler.relation)
        with pytest.raises(ArityError, match="batch row 1"):
            profiler.handle_inserts([("A", "1", "2"), ("short",)])
        # nothing was applied: relation, profile and indexes untouched
        assert len(profiler.relation) == rows_before
        assert profiler.snapshot() == before
        profile = profiler.handle_inserts([("Payne", "245", "31")])
        assert 0b010 not in profile.mucs  # behaves as from a clean state


class TestApproximationDegree:
    def test_degree_of_unique_and_dirty_keys(self, persons):
        profiler = SwanProfiler.profile(persons, algorithm="bruteforce")
        assert profiler.approximation_degree(["Phone"]) == 0
        assert profiler.approximation_degree(["Name"]) == 1  # Lee twice

    def test_degree_tracks_incremental_changes(self, persons):
        profiler = SwanProfiler.profile(persons, algorithm="bruteforce")
        profiler.handle_inserts([("Payne", "245", "31")])
        assert profiler.approximation_degree(["Phone"]) == 1
        profiler.handle_deletes([1])
        assert profiler.approximation_degree(["Phone"]) == 0

    def test_requires_plis(self, persons):
        profiler = SwanProfiler(
            persons, [0b010, 0b101], [0b001, 0b100], maintain_plis=False
        )
        with pytest.raises(ProfileStateError):
            profiler.approximation_degree(["Phone"])


class TestIntrospection:
    def test_snapshot_and_named_views(self, persons):
        profiler = SwanProfiler(persons, [0b010, 0b101], [0b001, 0b100])
        snapshot = profiler.snapshot()
        assert snapshot.mucs == (0b010, 0b101)
        assert [c.names for c in profiler.maximal_non_uniques()] == [
            ("Name",),
            ("Age",),
        ]

    def test_repr(self, persons):
        profiler = SwanProfiler(persons, [0b010, 0b101], [0b001, 0b100])
        text = repr(profiler)
        assert "rows=3" in text
        assert "MUCS|=2" in text
