"""Unit tests for the inserts handler (Algorithms 1, 2, 5)."""

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.inserts import InsertsHandler, _LookupCache
from repro.core.repository import ProfileRepository
from repro.core.swan import SwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.sparse_index import sparse_index_for_relation
from repro.storage.value_index import IndexPool


def build_handler(relation, mucs, mnucs, indexed_columns):
    repository = ProfileRepository(mucs, mnucs)
    pool = IndexPool.build(relation, indexed_columns)
    sparse = sparse_index_for_relation(relation)
    return InsertsHandler(relation, repository, pool, sparse)


@pytest.fixture
def persons():
    schema = Schema(["Name", "Phone", "Age"])
    return Relation.from_rows(
        schema,
        [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
    )


class TestHandle:
    def test_empty_batch_is_noop(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [1])
        outcome = handler.handle({})
        assert outcome.mucs == [0b010, 0b101]
        assert outcome.stats.batch_size == 0

    def test_non_breaking_insert_keeps_profile(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [1, 0])
        outcome = handler.handle({3: ("New", "999", "55")})
        assert sorted(outcome.mucs) == [0b010, 0b101]
        assert outcome.stats.broken_mucs == 0

    def test_breaking_insert_finds_new_mucs(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [1, 0])
        outcome = handler.handle({3: ("Payne", "245", "31")})
        assert sorted(outcome.mucs) == [0b101, 0b110]  # {Name,Age}, {Phone,Age}
        assert sorted(outcome.mnucs) == [0b011, 0b100]  # {Name,Phone}, {Age}
        assert outcome.stats.broken_mucs == 1

    def test_duplicate_only_within_batch(self, persons):
        """Two identical inserts that match nothing old still break
        every minimal unique."""
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [1, 0])
        outcome = handler.handle({3: ("A", "9", "9"), 4: ("A", "9", "9")})
        # the two fresh tuples are fully identical: nothing is unique
        assert outcome.mucs == []
        assert outcome.mnucs == [0b111]

    def test_partial_index_cover_is_exact(self, persons):
        """Only column Phone indexed: the MUC {Name, Age} has no index
        and must fall back; {Phone} uses the index; result stays
        correct."""
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [1])
        outcome = handler.handle({3: ("Payne", "245", "31")})
        assert sorted(outcome.mucs) == [0b101, 0b110]
        assert outcome.stats.fallback_scans == 1

    def test_no_indexes_at_all_fallback(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [])
        outcome = handler.handle({3: ("Payne", "245", "31")})
        assert sorted(outcome.mucs) == [0b101, 0b110]
        assert outcome.stats.fallback_scans == 2

    def test_stats_count_retrievals(self, persons):
        handler = build_handler(persons, [0b010, 0b101], [0b001, 0b100], [0, 1, 2])
        outcome = handler.handle({3: ("Payne", "245", "31")})
        assert outcome.stats.tuples_retrieved >= 1
        assert outcome.stats.index_lookups >= 2


class TestLookupCache:
    def test_largest_subset_selection(self):
        cache = _LookupCache()
        cache.store(0b001, {1: frozenset({5})})
        cache.store(0b011, {1: frozenset({5})})
        key, entry = cache.largest_subset(0b111)
        assert key == 0b011
        assert entry == {1: frozenset({5})}

    def test_no_subset(self):
        cache = _LookupCache()
        cache.store(0b100, {})
        key, entry = cache.largest_subset(0b011)
        assert key == 0 and entry is None

    def test_cache_hit_short_circuits_empty(self):
        """An empty cached result for a column subset answers every
        other minimal unique containing those columns."""
        schema = Schema(["Name", "Phone", "Age"])
        relation = Relation.from_rows(
            schema, [("A", "1", "10"), ("B", "1", "20"), ("B", "2", "20")]
        )
        # MUCS {Name,Phone}, {Phone,Age} share the indexed Phone column.
        handler = build_handler(relation, [0b011, 0b110], [0b101], [1])
        outcome = handler.handle({3: ("X", "777", "31")})
        # Phone probed once; the cached empty result answers the second
        # minimal unique without another look-up round.
        assert outcome.stats.index_lookups == 1
        assert outcome.stats.cache_hits >= 1
        assert sorted(outcome.mucs) == [0b011, 0b110]


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_batches(self, seed):
        import random

        rng = random.Random(seed)
        schema = Schema([f"c{i}" for i in range(4)])
        rows = [
            tuple(str(rng.randrange(3)) for _ in range(4))
            for _ in range(rng.randint(3, 15))
        ]
        relation = Relation.from_rows(schema, rows)
        profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
        batch = [
            tuple(str(rng.randrange(3)) for _ in range(4))
            for _ in range(rng.randint(1, 5))
        ]
        profile = profiler.handle_inserts(batch)
        expected_mucs, expected_mnucs = discover_bruteforce(relation)
        assert sorted(profile.mucs) == sorted(expected_mucs)
        assert sorted(profile.mnucs) == sorted(expected_mnucs)
