"""The paper's running example (Table I), reproduced exactly.

Section I walks the Persons relation through one insert and one delete;
these tests assert SWAN (and all static engines) produce precisely the
combinations the paper names.
"""

import pytest

from repro.core.swan import SwanProfiler
from repro.profiling.discovery import available_algorithms, discover


def names(schema, masks):
    return {schema.combination(mask).names for mask in masks}


class TestStaticProfile:
    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_initial_profile(self, persons_relation, algorithm):
        mucs, mnucs = discover(persons_relation, algorithm)
        schema = persons_relation.schema
        assert names(schema, mucs) == {("Phone",), ("Name", "Age")}
        assert names(schema, mnucs) == {("Name",), ("Age",)}


class TestInsertCase:
    def test_insert_payne(self, persons_relation):
        """Case (1): inserting (Payne, 245, 31) breaks {Phone}; the new
        minimal unique is {Age, Phone} and {Name, Phone} becomes a
        maximal non-unique subsuming {Name}."""
        profiler = SwanProfiler.profile(persons_relation, algorithm="bruteforce")
        profile = profiler.handle_inserts([("Payne", "245", "31")])
        schema = persons_relation.schema
        assert names(schema, profile.mucs) == {("Name", "Age"), ("Phone", "Age")}
        assert names(schema, profile.mnucs) == {("Age",), ("Name", "Phone")}

    def test_insert_stats_report_broken_muc(self, persons_relation):
        profiler = SwanProfiler.profile(persons_relation, algorithm="bruteforce")
        profiler.handle_inserts([("Payne", "245", "31")])
        stats = profiler.last_insert_stats
        assert stats.batch_size == 1
        assert stats.broken_mucs == 1
        assert stats.duplicate_groups >= 1


class TestDeleteCase:
    def test_delete_first_lee(self, persons_relation):
        """Case (2): deleting (Lee, 234, 30) from the original relation
        turns the maximal non-uniques {Name} and {Age} into uniques, so
        every single column is a minimal unique."""
        profiler = SwanProfiler.profile(persons_relation, algorithm="bruteforce")
        profile = profiler.handle_deletes([2])
        schema = persons_relation.schema
        assert names(schema, profile.mucs) == {("Name",), ("Phone",), ("Age",)}
        # with all singles unique, only the empty combination is non-unique
        assert names(schema, profile.mnucs) == {()}

    def test_insert_then_delete_sequence(self, persons_relation):
        """The full narrative: insert (Payne, 245, 31), then delete the
        original (Lee, 234, 30)."""
        profiler = SwanProfiler.profile(persons_relation, algorithm="bruteforce")
        profiler.handle_inserts([("Payne", "245", "31")])
        profile = profiler.handle_deletes([2])
        schema = persons_relation.schema
        # remaining: (Lee,345,20), (Payne,245,30), (Payne,245,31)
        assert names(schema, profile.mucs) == {("Age",)}
        assert names(schema, profile.mnucs) == {("Name", "Phone")}

    def test_delete_stats(self, persons_relation):
        profiler = SwanProfiler.profile(persons_relation, algorithm="bruteforce")
        profiler.handle_deletes([2])
        stats = profiler.last_delete_stats
        assert stats.batch_size == 1
        assert stats.mnucs_checked == 2
        assert stats.turned_mnucs == 2
