"""Unit tests for the deterministic fan-out executor."""

import threading

import pytest

from repro.core.parallel import FanOutPool


class TestSerialPath:
    def test_parallelism_zero_is_inactive(self):
        pool = FanOutPool(0)
        assert not pool.active
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert pool.stats.serial_batches == 1
        assert pool.stats.fanout_batches == 0

    def test_parallelism_one_is_inactive(self):
        assert not FanOutPool(1).active

    def test_single_item_runs_inline_even_when_active(self):
        pool = FanOutPool(4)
        thread_names = []
        pool.map(lambda x: thread_names.append(threading.current_thread().name), [1])
        assert thread_names == [threading.current_thread().name]
        assert pool.stats.serial_batches == 1
        pool.close()

    def test_negative_parallelism_clamped(self):
        assert FanOutPool(-3).parallelism == 0


class TestFanOut:
    def test_results_come_back_in_input_order(self):
        pool = FanOutPool(4)
        items = list(range(50))
        try:
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]
        finally:
            pool.close()

    def test_work_actually_leaves_the_calling_thread(self):
        pool = FanOutPool(2)
        names = pool.map(lambda _: threading.current_thread().name, range(8))
        pool.close()
        assert any(name.startswith("repro-fanout") for name in names)

    def test_exception_propagates(self):
        pool = FanOutPool(2)

        def boom(x):
            if x == 3:
                raise ValueError("task failed")
            return x

        try:
            with pytest.raises(ValueError, match="task failed"):
                pool.map(boom, range(8))
        finally:
            pool.close()

    def test_stats_and_utilization(self):
        pool = FanOutPool(4)
        pool.map(lambda x: x, range(8))
        pool.close()
        assert pool.stats.tasks == 8
        assert pool.stats.fanout_batches == 1
        assert pool.stats.fanout_tasks == 8
        assert pool.stats.utilization(4) == 2.0
        stats = pool.stats_dict()
        assert stats["workers"] == 4
        assert stats["utilization"] == 2.0

    def test_utilization_with_no_batches(self):
        assert FanOutPool(4).stats.utilization(4) == 0.0


class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = FanOutPool(2)
        pool.map(lambda x: x, range(4))
        pool.close()
        pool.close()

    def test_usable_after_close(self):
        pool = FanOutPool(2)
        pool.map(lambda x: x, range(4))
        pool.close()
        assert pool.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]
        pool.close()

    def test_context_manager(self):
        with FanOutPool(2) as pool:
            assert pool.map(lambda x: x, range(4)) == [0, 1, 2, 3]
