"""Unit tests for the deterministic fan-out executors."""

import multiprocessing
import os
import threading

import pytest

from repro.core.parallel import FanOutPool, ProcessFanOut, make_pool

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process fan-out needs the fork start method",
)


class TestSerialPath:
    def test_parallelism_zero_is_inactive(self):
        pool = FanOutPool(0)
        assert not pool.active
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert pool.stats.serial_batches == 1
        assert pool.stats.fanout_batches == 0

    def test_parallelism_one_is_inactive(self):
        assert not FanOutPool(1).active

    def test_single_item_runs_inline_even_when_active(self):
        pool = FanOutPool(4)
        thread_names = []
        pool.map(lambda x: thread_names.append(threading.current_thread().name), [1])
        assert thread_names == [threading.current_thread().name]
        assert pool.stats.serial_batches == 1
        pool.close()

    def test_negative_parallelism_clamped(self):
        assert FanOutPool(-3).parallelism == 0


class TestFanOut:
    def test_results_come_back_in_input_order(self):
        pool = FanOutPool(4)
        items = list(range(50))
        try:
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]
        finally:
            pool.close()

    def test_work_actually_leaves_the_calling_thread(self):
        pool = FanOutPool(2)
        names = pool.map(lambda _: threading.current_thread().name, range(8))
        pool.close()
        assert any(name.startswith("repro-fanout") for name in names)

    def test_exception_propagates(self):
        pool = FanOutPool(2)

        def boom(x):
            if x == 3:
                raise ValueError("task failed")
            return x

        try:
            with pytest.raises(ValueError, match="task failed"):
                pool.map(boom, range(8))
        finally:
            pool.close()

    def test_stats_and_utilization(self):
        pool = FanOutPool(4)
        pool.map(lambda x: x, range(8))
        pool.close()
        assert pool.stats.tasks == 8
        assert pool.stats.fanout_batches == 1
        assert pool.stats.fanout_tasks == 8
        # 8 tasks over 4 workers = 2 full waves, no idle slots.
        assert pool.stats.utilization(4) == 1.0
        stats = pool.stats_dict()
        assert stats["workers"] == 4
        assert stats["utilization"] == 1.0
        assert stats["effective_workers"] == 4.0

    def test_workers_clamped_to_batch_size(self):
        """Regression: a 4-worker pool fed a 3-item batch used to count
        (and, in process mode, fork) a fourth worker that never ran."""
        pool = FanOutPool(4)
        pool.map(lambda x: x, range(3))
        pool.close()
        assert pool.stats.effective_sum == 3
        assert pool.stats.fanout_slots == 3
        assert pool.stats.utilization(4) == 1.0
        assert pool.stats_dict()["effective_workers"] == 3.0

    def test_ragged_last_wave_counts_idle_slots(self):
        pool = FanOutPool(4)
        pool.map(lambda x: x, range(6))  # waves of 4 + 2: 8 slots, 6 busy
        pool.close()
        assert pool.stats.fanout_slots == 8
        assert pool.stats.utilization(4) == 0.75

    def test_utilization_with_no_batches(self):
        assert FanOutPool(4).stats.utilization(4) == 0.0

    def test_active_pool_reports_its_mode(self):
        assert FanOutPool(4).stats_dict()["mode"] == "thread"


class TestInlineUtilization:
    """Regression: an inline pool used to divide busy time by a worker
    count that never ran, reporting 0% utilization for a path that is
    by construction running at full capacity."""

    def test_inline_pool_reports_full_utilization(self):
        pool = FanOutPool(0)
        pool.map(lambda x: x, [1, 2, 3])
        assert pool.stats.utilization(pool.parallelism) == 1.0
        stats = pool.stats_dict()
        assert stats["utilization"] == 1.0
        assert stats["mode"] == "inline"

    def test_parallelism_one_reports_full_utilization(self):
        pool = FanOutPool(1)
        pool.map(lambda x: x, range(5))
        assert pool.stats_dict()["utilization"] == 1.0
        assert pool.stats_dict()["mode"] == "inline"


class TestProcessFanOut:
    @fork_only
    def test_results_come_back_in_input_order(self):
        with ProcessFanOut(2) as pool:
            items = list(range(20))
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]
            assert pool.stats.fanout_batches == 1

    @fork_only
    def test_work_actually_leaves_the_calling_process(self):
        with ProcessFanOut(2) as pool:
            pids = pool.map(lambda _: os.getpid(), range(4))
        assert any(pid != os.getpid() for pid in pids)

    @fork_only
    def test_closure_state_reaches_children_without_pickling(self):
        shared = {"offset": 7}

        class Unpicklable:
            __reduce__ = None  # would blow up any pickle-based transfer

        anchor = Unpicklable()

        def task(x):
            assert anchor is not None
            return x + shared["offset"]

        with ProcessFanOut(2) as pool:
            assert pool.map(task, [1, 2, 3]) == [8, 9, 10]

    @fork_only
    def test_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("task failed")
            return x

        with ProcessFanOut(2) as pool:
            with pytest.raises(ValueError, match="task failed"):
                pool.map(boom, range(4))

    def test_single_item_runs_inline(self):
        pool = ProcessFanOut(4)
        assert pool.map(lambda x: x + 1, [1]) == [2]
        assert pool.stats.serial_batches == 1

    def test_parallelism_one_is_inactive(self):
        assert not ProcessFanOut(1).active

    def test_stats_report_process_mode(self):
        pool = ProcessFanOut(2)
        expected = "process" if pool.active else "inline"
        assert pool.stats_dict()["mode"] == expected


class TestMakePool:
    def test_thread_mode(self):
        pool = make_pool("thread", 3)
        assert type(pool) is FanOutPool
        assert pool.parallelism == 3

    def test_process_mode(self):
        pool = make_pool("process", 3)
        assert type(pool) is ProcessFanOut

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown execution mode"):
            make_pool("gpu", 2)


class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = FanOutPool(2)
        pool.map(lambda x: x, range(4))
        pool.close()
        pool.close()

    def test_usable_after_close(self):
        pool = FanOutPool(2)
        pool.map(lambda x: x, range(4))
        pool.close()
        assert pool.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]
        pool.close()

    def test_context_manager(self):
        with FanOutPool(2) as pool:
            assert pool.map(lambda x: x, range(4)) == [0, 1, 2, 3]
