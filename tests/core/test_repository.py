"""Unit tests for the profile repository."""

import pytest

from repro.core.repository import Profile, ProfileRepository
from repro.errors import InconsistentProfileError
from repro.storage.schema import Schema


class TestProfile:
    def test_from_masks_canonical_order(self):
        profile = Profile.from_masks([0b110, 0b001], [0b010])
        assert profile.mucs == (0b001, 0b110)
        assert profile.mnucs == (0b010,)

    def test_named_views(self):
        schema = Schema(["a", "b", "c"])
        profile = Profile.from_masks([0b001], [0b110])
        mucs, mnucs = profile.named(schema)
        assert [combo.names for combo in mucs] == [("a",)]
        assert [combo.names for combo in mnucs] == [("b", "c")]

    def test_str(self):
        profile = Profile.from_masks([0b1], [])
        assert "MUCS|=1" in str(profile)


class TestRepository:
    def test_basic_queries(self):
        repo = ProfileRepository([0b001, 0b110], [0b010, 0b100])
        assert repo.is_unique(0b001)
        assert repo.is_unique(0b011)
        assert not repo.is_unique(0b010)
        assert repo.is_non_unique(0b010)
        assert repo.is_non_unique(0)
        assert not repo.is_non_unique(0b011)

    def test_rejects_non_antichain_mucs(self):
        with pytest.raises(InconsistentProfileError):
            ProfileRepository([0b001, 0b011], [])

    def test_rejects_non_antichain_mnucs(self):
        with pytest.raises(InconsistentProfileError):
            ProfileRepository([], [0b001, 0b011])

    def test_rejects_muc_inside_mnuc(self):
        with pytest.raises(InconsistentProfileError):
            ProfileRepository([0b001], [0b011])

    def test_replace_swaps_profile(self):
        repo = ProfileRepository([0b001], [0b110])
        repo.replace([0b010], [0b101])
        assert repo.mucs == [0b010]
        assert repo.mnucs == [0b101]

    def test_snapshot_is_immutable_view(self):
        repo = ProfileRepository([0b001], [0b110])
        snapshot = repo.snapshot()
        repo.replace([0b010], [0b101])
        assert snapshot.mucs == (0b001,)
