"""Unit tests for Algorithms 3 and 4 (index selection)."""

from repro.core.index_selection import (
    add_additional_index_attributes,
    coverage_report,
    covering_indexes,
    select_index_attributes,
    uncovered_part,
)
from repro.profiling.stats import ColumnStatistics


def stats_for(cardinalities: list[int], rows: int) -> ColumnStatistics:
    return ColumnStatistics(row_count=rows, cardinalities=tuple(cardinalities))


class TestSelectIndexAttributes:
    def test_single_muc(self):
        assert select_index_attributes([0b011], 2) in ([0], [1])

    def test_most_frequent_column_wins(self):
        # column 0 appears in all three minimal uniques
        mucs = [0b001, 0b011, 0b101]
        assert select_index_attributes(mucs, 3) == [0]

    def test_greedy_cover_multiple_rounds(self):
        # paper's Section III-D example: {A,B}, {A,C}, {A,D}, {C,D}
        mucs = [0b0011, 0b0101, 0b1001, 0b1100]
        chosen = select_index_attributes(mucs, 4)
        # A covers the first three; then C or D covers {C,D}
        assert chosen[0] == 0
        assert len(chosen) == 2
        assert chosen[1] in (2, 3)

    def test_every_muc_covered(self):
        mucs = [0b0011, 0b1100, 0b0110]
        chosen = select_index_attributes(mucs, 4)
        chosen_mask = sum(1 << column for column in chosen)
        assert all(mask & chosen_mask for mask in mucs)

    def test_tie_break_prefers_ranked_column(self):
        # both columns appear once; rank column 1 first
        mucs = [0b001, 0b010]
        assert select_index_attributes(mucs, 2, tie_break=[1, 0]) == [1, 0]

    def test_empty_muc_ignored(self):
        assert select_index_attributes([0], 3) == []

    def test_no_mucs(self):
        assert select_index_attributes([], 3) == []


class TestAdditionalIndexes:
    def test_paper_example_prefers_d_over_b(self):
        """Section III-D: with MUCS {A,B}, {A,C}, {A,D}, {C,D} and
        initial indexes {A, C}, the extra quota should go to D (which
        lets T(I_C) be reduced), not B."""
        mucs = [0b0011, 0b0101, 0b1001, 0b1100]
        initial = [0, 2]
        stats = stats_for([90, 50, 40, 60], 100)
        chosen = add_additional_index_attributes(mucs, 4, initial, quota=3, stats=stats)
        assert set(chosen) == {0, 2, 3}

    def test_quota_already_spent(self):
        mucs = [0b011]
        stats = stats_for([10, 10], 100)
        assert add_additional_index_attributes(mucs, 2, [0], quota=1, stats=stats) == [0]

    def test_no_feasible_extension(self):
        # covering the only singly-covered MUC costs more than the quota
        mucs = [0b111001]  # needs 0 plus cover of {3,4,5}\{0}
        stats = stats_for([10] * 6, 100)
        chosen = add_additional_index_attributes(mucs, 6, [0], quota=1, stats=stats)
        assert chosen == [0]

    def test_fully_covered_mucs_need_nothing(self):
        # every MUC contains >= 2 indexed columns already
        mucs = [0b011]
        stats = stats_for([10, 10], 100)
        chosen = add_additional_index_attributes(mucs, 2, [0, 1], quota=2, stats=stats)
        assert chosen == [0, 1]


class TestHelpers:
    def test_covering_indexes(self):
        assert covering_indexes(0b1011, [0, 2, 3]) == [0, 3]

    def test_uncovered_part(self):
        assert uncovered_part(0b1011, [0, 3]) == 0b0010

    def test_coverage_report(self):
        report = coverage_report([0b011, 0b100], [0])
        assert report["mucs"] == 2.0
        assert report["covered"] == 1.0
        assert report["indexed_columns"] == 1.0


class TestSelectivityModel:
    def test_selectivity(self):
        stats = stats_for([100, 50], 100)
        assert stats.selectivity(0) == 1.0
        assert stats.selectivity(1) == 0.5

    def test_combined_selectivity_union_probability(self):
        stats = stats_for([50, 50], 100)
        assert abs(stats.combined_selectivity([0, 1]) - 0.75) < 1e-12

    def test_empty_relation(self):
        stats = stats_for([], 0)
        assert stats.combined_selectivity([]) == 0.0
