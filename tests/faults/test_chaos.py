"""Chaos-runner tests: targeted scenarios plus a small in-process sweep.

The CI chaos job runs the full sweep; here we pin down the individual
scenario mechanics (crash -> cold recovery, retry survival, table
round-trip) and keep one narrow sweep as a regression canary.
"""

import pytest

from repro.faults import registered_sites
from repro.faults.chaos import (
    MODES,
    ChaosFailure,
    main as chaos_main,
    run_isolation_scenario,
    run_service_scenario,
    run_sweep,
    run_table_scenario,
    run_tenant_fleet_scenario,
)


class TestServiceScenario:
    def test_transient_append_fault_is_survived(self, tmp_path):
        # Hit 2 of changelog.append.write is the first record append
        # (hit 1 is the header), which sits under the retry policy.
        result = run_service_scenario(
            "changelog.append.write", "transient", 1, str(tmp_path)
        )
        assert result.fired >= 1
        assert result.outcome in ("survived", "recovered")

    def test_crash_at_fsync_recovers_on_restart(self, tmp_path):
        result = run_service_scenario(
            "changelog.append.fsync", "crash", 0, str(tmp_path)
        )
        assert result.outcome == "crash-recovered"
        assert result.fired == 1

    def test_persistent_snapshot_fault_never_serves_wrong_profile(
        self, tmp_path
    ):
        result = run_service_scenario(
            "snapshot.rows.write", "persistent", 0, str(tmp_path)
        )
        # Persistent snapshot loss degrades; correctness is checked
        # exhaustively inside the scenario (it raises on divergence).
        assert result.outcome in ("survived", "recovered")
        assert result.fired >= 1

    def test_rotate_site_is_reachable(self, tmp_path):
        result = run_service_scenario(
            "changelog.rotate.replace", "transient", 0, str(tmp_path)
        )
        assert result.fired >= 1


class TestTableScenario:
    def test_short_write_then_rebuild_round_trips(self, tmp_path):
        result = run_table_scenario(
            "table.append.write", "short_write", 0, str(tmp_path)
        )
        assert result.outcome == "recovered"

    def test_crash_then_rebuild_round_trips(self, tmp_path):
        result = run_table_scenario("table.open", "crash", 0, str(tmp_path))
        assert result.outcome == "crash-recovered"


class TestSweep:
    def test_narrow_sweep_passes(self, tmp_path):
        report = run_sweep(
            seeds=[0],
            sites=["changelog.append.write", "snapshot.publish.rename"],
            modes=["transient", "crash"],
            root=str(tmp_path),
        )
        assert report.ok
        assert len(report.results) == 4
        assert all(r.fired >= 1 for r in report.results)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            run_sweep(seeds=[0], sites=["no.such.site"])

    def test_every_registered_site_has_a_runner(self):
        # The sweep dispatches on the site prefix; every registered
        # site must be one the harness knows how to exercise.
        for site in registered_sites():
            assert site.split(".")[0] in (
                "changelog",
                "snapshot",
                "spool",
                "table",
                "deadletter",
                "status",
                "lock",
                "relation",
                "profile",
                "tenants",
                "http",
            ), f"no chaos runner covers site {site}"

    def test_failure_shape(self):
        failure = ChaosFailure("a.b", "crash", 3, "row count off")
        assert "a.b" in str(failure)
        assert "seed=3" in str(failure)


class TestTenantFleetScenario:
    def test_registry_replace_fault_recovers(self, tmp_path):
        result = run_tenant_fleet_scenario(
            "tenants.registry.replace", "transient", 0, str(tmp_path)
        )
        assert result.fired >= 1
        assert result.outcome in ("survived", "recovered")

    def test_registry_crash_recovers(self, tmp_path):
        result = run_tenant_fleet_scenario(
            "tenants.registry.open", "crash", 0, str(tmp_path)
        )
        assert result.fired >= 1
        assert result.outcome == "crash-recovered"


class TestIsolationScenario:
    def test_faulted_tenant_degrades_alone(self, tmp_path):
        result = run_isolation_scenario(0, str(tmp_path))
        assert result.outcome == "isolated"
        assert result.fired >= 1

    def test_target_rotates_with_seed(self, tmp_path):
        first = run_isolation_scenario(1, str(tmp_path / "a"))
        second = run_isolation_scenario(2, str(tmp_path / "b"))
        assert first.detail != second.detail

    def test_multi_tenant_cli_flag(self, tmp_path, capsys):
        code = chaos_main(
            ["--multi-tenant", "--seeds", "0", "--root", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "isolation seed=0 -> isolated" in out


class TestCli:
    def test_list_sites(self, capsys):
        assert chaos_main(["--list-sites"]) == 0
        out = capsys.readouterr().out
        assert "changelog.append.fsync" in out

    def test_single_scenario_run(self, tmp_path, capsys):
        code = chaos_main(
            [
                "--seeds", "0",
                "--sites", "changelog.append.fsync",
                "--modes", "transient",
                "--root", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no wrong profile" in out

    def test_mode_constants_match_parser(self):
        assert set(MODES) == {
            "transient", "short_write", "intermittent", "persistent", "crash"
        }
