"""Unit tests for the seeded fault injector and the fsops site registry."""

import errno
import io

import pytest

from repro.faults import (
    CRASH,
    ERROR,
    SHORT_WRITE,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    active,
    current_injector,
    fsops,
    registered_sites,
    site_description,
)

SITE = "changelog.append.write"  # registered by the changelog module


class TestFaultSpec:
    def test_defaults_are_one_shot_error(self):
        spec = FaultSpec("x.y")
        assert spec.kind == ERROR
        assert spec.at == 1
        assert spec.times == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("x.y", kind="flood")

    def test_at_must_be_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("x.y", at=0)

    def test_times_validated(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("x.y", times=0)

    def test_probability_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("x.y", probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("x.y", probability=1.5)


class TestInjectorFiring:
    def test_one_shot_fires_exactly_once_at_the_named_hit(self):
        injector = FaultInjector(FaultPlan.one_shot("a.b", at=3))
        injector.check("a.b")
        injector.check("a.b")
        with pytest.raises(InjectedIOError) as excinfo:
            injector.check("a.b")
        assert excinfo.value.errno == errno.EIO
        assert excinfo.value.site == "a.b"
        assert excinfo.value.hit == 3
        injector.check("a.b")  # spent: fires no more
        assert injector.fired == [("a.b", ERROR, 3)]
        assert injector.hits["a.b"] == 4

    def test_other_sites_unaffected(self):
        injector = FaultInjector(FaultPlan.one_shot("a.b"))
        injector.check("c.d")
        assert injector.fired == []
        assert injector.fired_at("a.b") == 0

    def test_persistent_fires_on_every_hit(self):
        injector = FaultInjector(FaultPlan.persistent("a.b"))
        for _ in range(4):
            with pytest.raises(InjectedIOError):
                injector.check("a.b")
        assert injector.fired_at("a.b") == 4

    def test_intermittent_is_deterministic_per_seed(self):
        def firing_pattern(seed):
            injector = FaultInjector(
                FaultPlan.intermittent("a.b", probability=0.5, seed=seed)
            )
            pattern = []
            for _ in range(20):
                try:
                    injector.check("a.b")
                    pattern.append(False)
                except InjectedIOError:
                    pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert any(firing_pattern(7))
        assert not all(firing_pattern(7))

    def test_crash_raises_crashpoint_not_catchable_as_exception(self):
        injector = FaultInjector(FaultPlan.one_shot("a.b", kind=CRASH))
        with pytest.raises(BaseException) as excinfo:
            try:
                injector.check("a.b")
            except Exception:  # a retry loop must NOT absorb a crash
                pytest.fail("CrashPoint was caught as Exception")
        assert isinstance(excinfo.value, CrashPoint)

    def test_short_write_leaves_partial_payload(self):
        injector = FaultInjector(FaultPlan.one_shot("a.b", kind=SHORT_WRITE))
        buffer = io.BytesIO()
        with pytest.raises(InjectedIOError):
            injector.write("a.b", buffer, b"0123456789")
        assert buffer.getvalue() == b"01234"  # half, then the error

    def test_crash_at_write_site_also_tears_the_frame(self):
        injector = FaultInjector(FaultPlan.one_shot("a.b", kind=CRASH))
        buffer = io.BytesIO()
        with pytest.raises(CrashPoint):
            injector.write("a.b", buffer, b"abcdef")
        assert buffer.getvalue() == b"abc"

    def test_clean_write_passes_data_through(self):
        injector = FaultInjector(FaultPlan())
        buffer = io.BytesIO()
        injector.write("a.b", buffer, b"payload")
        assert buffer.getvalue() == b"payload"
        assert injector.hits["a.b"] == 1


class TestActiveInjector:
    def test_active_installs_and_restores(self):
        assert current_injector() is None
        injector = FaultInjector(FaultPlan())
        with active(injector) as installed:
            assert installed is injector
            assert current_injector() is injector
        assert current_injector() is None

    def test_nested_activations_restore_previous(self):
        outer, inner = FaultInjector(FaultPlan()), FaultInjector(FaultPlan())
        with active(outer):
            with active(inner):
                assert current_injector() is inner
            assert current_injector() is outer

    def test_restored_even_on_error(self):
        with pytest.raises(RuntimeError):
            with active(FaultInjector(FaultPlan())):
                raise RuntimeError("boom")
        assert current_injector() is None


class TestFsops:
    def test_registry_contains_the_durability_sites(self):
        # Importing the service modules registers their sites.
        import repro.service.server  # noqa: F401
        import repro.storage.table_file  # noqa: F401

        sites = registered_sites()
        for expected in (
            "changelog.append.write",
            "changelog.append.fsync",
            "snapshot.publish.rename",
            "snapshot.rows.write",
            "table.append.write",
            "spool.ack.replace",
        ):
            assert expected in sites
            assert site_description(expected)

    def test_conflicting_reregistration_rejected(self):
        fsops.register_site("test.dup", "same words")
        fsops.register_site("test.dup", "same words")  # idempotent
        with pytest.raises(ValueError, match="registered twice"):
            fsops.register_site("test.dup", "different words")

    def test_wrappers_are_bare_ops_without_injector(self, tmp_path):
        path = str(tmp_path / "f.txt")
        with fsops.open_("t.open", path, "w") as handle:
            fsops.write("t.write", handle, "hello")
            handle.flush()
            fsops.fsync("t.fsync", handle)
        fsops.rename("t.rename", path, path + ".2")
        fsops.replace("t.replace", path + ".2", path)
        fsops.remove("t.remove", path)
        import os

        assert not os.path.exists(path)

    def test_wrappers_report_to_active_injector(self, tmp_path):
        injector = FaultInjector(
            FaultPlan([FaultSpec("t.write2", kind=ERROR, at=1)])
        )
        path = str(tmp_path / "f.txt")
        with active(injector):
            with open(path, "w") as handle:
                with pytest.raises(InjectedIOError):
                    fsops.write("t.write2", handle, "hello")
        assert injector.fired_at("t.write2") == 1
