"""Unit and oracle tests for FD discovery."""

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.fd.oracle import discover_fds_bruteforce
from repro.fd.tane import FunctionalDependency, discover_fds, holds
from repro.lattice.combination import is_subset
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from tests.conftest import random_relation


@pytest.fixture
def classic():
    """zip -> city holds; city -> zip does not."""
    schema = Schema(["zip", "city", "name"])
    return Relation.from_rows(
        schema,
        [
            ("10115", "Berlin", "a"),
            ("10115", "Berlin", "b"),
            ("20095", "Hamburg", "c"),
            ("21073", "Hamburg", "d"),
        ],
    )


class TestHolds:
    def test_valid_fd(self, classic):
        assert holds(classic, 0b001, 1)  # zip -> city

    def test_invalid_fd(self, classic):
        assert not holds(classic, 0b010, 0)  # city -> zip

    def test_empty_lhs_constant_column(self):
        relation = Relation.from_rows(Schema(["a", "b"]), [("x", "1"), ("x", "2")])
        assert holds(relation, 0, 0)
        assert not holds(relation, 0, 1)


class TestDiscoverFds:
    def test_classic_example(self, classic):
        fds = discover_fds(classic)
        assert FunctionalDependency(0b001, 1) in fds  # zip -> city
        assert FunctionalDependency(0b010, 0) not in fds
        # name is a key here: it determines zip and city minimally
        assert FunctionalDependency(0b100, 0) in fds
        assert FunctionalDependency(0b100, 1) in fds

    def test_constant_column_determined_by_empty_set(self):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [("x", "1"), ("x", "2"), ("x", "3")]
        )
        fds = discover_fds(relation)
        assert FunctionalDependency(0, 0) in fds
        # and nothing else reports 'a' as RHS (minimality)
        assert [fd for fd in fds if fd.rhs == 0] == [FunctionalDependency(0, 0)]

    def test_no_trivial_fds(self, classic):
        assert all(not fd.lhs >> fd.rhs & 1 for fd in discover_fds(classic))

    def test_minimality(self, classic):
        fds = discover_fds(classic)
        by_rhs: dict[int, list[int]] = {}
        for fd in fds:
            by_rhs.setdefault(fd.rhs, []).append(fd.lhs)
        for lhs_list in by_rhs.values():
            for left_index, left in enumerate(lhs_list):
                for right in lhs_list[left_index + 1 :]:
                    assert not is_subset(left, right)
                    assert not is_subset(right, left)

    def test_max_lhs_cap(self, classic):
        capped = discover_fds(classic, max_lhs=1)
        assert all(bin(fd.lhs).count("1") <= 1 for fd in capped)

    def test_named_rendering(self, classic):
        fd = FunctionalDependency(0b001, 1)
        assert fd.named(classic.schema) == "[zip] -> city"

    def test_empty_and_single_column_relations(self):
        assert discover_fds(Relation(Schema(["a", "b"]))) == []
        single = Relation.from_rows(Schema(["a"]), [("x",)])
        assert discover_fds(single) == []


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_relations(self, seed):
        relation = random_relation(seed, n_columns=4)
        assert discover_fds(relation) == discover_fds_bruteforce(relation)

    @pytest.mark.parametrize("seed", range(5))
    def test_wider_relations(self, seed):
        relation = random_relation(300 + seed, n_columns=5, n_rows=20, domain=3)
        assert discover_fds(relation) == discover_fds_bruteforce(relation)


class TestUccFdConnection:
    """The bridges DESIGN.md / the paper call out."""

    @pytest.mark.parametrize("seed", range(6))
    def test_every_unique_determines_everything(self, seed):
        relation = random_relation(seed, n_columns=4, n_rows=15, domain=3)
        mucs, __ = discover_bruteforce(relation)
        for muc in mucs:
            for rhs in range(relation.n_columns):
                if not muc >> rhs & 1:
                    assert holds(relation, muc, rhs)

    @pytest.mark.parametrize("seed", range(6))
    def test_minimal_fd_lhs_never_contains_unique(self, seed):
        """A minimal FD's LHS cannot strictly contain a unique: the
        unique alone would already determine the RHS."""
        relation = random_relation(50 + seed, n_columns=4, n_rows=15, domain=3)
        mucs, __ = discover_bruteforce(relation)
        for fd in discover_fds(relation):
            for muc in mucs:
                assert not (is_subset(muc, fd.lhs) and muc != fd.lhs)
