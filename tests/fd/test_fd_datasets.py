"""FD discovery against the dataset generators' planted dependencies."""

import pytest

from repro.fd.tane import FunctionalDependency, discover_fds
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.tpch import lineitem_relation
from repro.datasets.uniprot import uniprot_relation


class TestPlantedDependencies:
    def test_ncvoter_geography_chain(self):
        relation = ncvoter_relation(500, n_columns=12, seed=2)
        schema = relation.schema
        fds = discover_fds(relation, max_lhs=1)
        found = {(fd.lhs, fd.rhs) for fd in fds}
        zip_col = schema.index_of("zip_code")
        city = schema.index_of("res_city_desc")
        county = schema.index_of("county_id")
        assert (1 << zip_col, city) in found
        assert (1 << zip_col, county) in found

    def test_uniprot_entry_name_from_accession(self):
        relation = uniprot_relation(400, n_columns=6, seed=2)
        schema = relation.schema
        fds = discover_fds(relation, max_lhs=1)
        accession = schema.index_of("accession")
        entry = schema.index_of("entry_name")
        assert FunctionalDependency(1 << accession, entry) in fds

    def test_tpch_constant_derivations(self):
        """l_extendedprice is a function of quantity and part key."""
        relation = lineitem_relation(600, seed=2)
        schema = relation.schema
        lhs = schema.mask(["l_quantity", "l_partkey"])
        from repro.fd.tane import holds

        assert holds(relation, lhs, schema.index_of("l_extendedprice"))

    def test_keys_determine_everything(self):
        relation = lineitem_relation(400, seed=3)
        schema = relation.schema
        key = schema.mask(["l_orderkey", "l_linenumber"])
        from repro.fd.tane import holds

        for rhs in range(relation.n_columns):
            if not key >> rhs & 1:
                assert holds(relation, key, rhs)


class TestCapBehaviour:
    @pytest.mark.parametrize("cap", [0, 1, 2])
    def test_caps_nest(self, cap):
        relation = ncvoter_relation(300, n_columns=8, seed=5)
        capped = set(discover_fds(relation, max_lhs=cap))
        wider = set(discover_fds(relation, max_lhs=cap + 1))
        assert capped <= wider
