"""Tests for bounded retry with exponential backoff and full jitter."""

import random

import pytest

from repro.faults import CrashPoint
from repro.service.retry import RetryPolicy, retry_io


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.35)

        class TopRng:
            def uniform(self, low, high):
                return high  # jitter at the top of the window

        rng = TopRng()
        assert policy.delay_for(1, rng) == pytest.approx(0.1)
        assert policy.delay_for(2, rng) == pytest.approx(0.2)
        assert policy.delay_for(3, rng) == pytest.approx(0.35)  # capped
        assert policy.delay_for(9, rng) == pytest.approx(0.35)

    def test_full_jitter_spans_zero_to_cap(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0)
        rng = random.Random(0)
        delays = [policy.delay_for(1, rng) for _ in range(200)]
        assert all(0.0 <= d <= 1.0 for d in delays)
        assert min(delays) < 0.2 and max(delays) > 0.8


class TestRetryIO:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        assert (
            retry_io(lambda: 42, sleep=sleeps.append, rng=random.Random(0))
            == 42
        )
        assert sleeps == []

    def test_retries_transient_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        sleeps = []
        result = retry_io(
            flaky,
            RetryPolicy(max_attempts=4, base_delay=0.5),
            sleep=sleeps.append,
            rng=random.Random(1),
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_exhaustion_reraises_last_error(self):
        def always_fails():
            raise OSError("still dead")

        with pytest.raises(OSError, match="still dead"):
            retry_io(
                always_fails,
                RetryPolicy(max_attempts=3, base_delay=0.0),
                sleep=lambda _d: None,
            )

    def test_on_retry_reports_attempt_error_and_delay(self):
        calls = []

        def flaky():
            if len(calls) < 1:
                raise OSError("once")
            return "ok"

        retry_io(
            flaky,
            RetryPolicy(max_attempts=2, base_delay=0.25, max_delay=0.25),
            sleep=lambda _d: None,
            rng=random.Random(0),
            on_retry=lambda a, e, d: calls.append((a, str(e), d)),
        )
        assert len(calls) == 1
        attempt, message, delay = calls[0]
        assert attempt == 1
        assert message == "once"
        assert 0.0 <= delay <= 0.25

    def test_non_retryable_exceptions_propagate_immediately(self):
        attempts = []

        def fails_differently():
            attempts.append(1)
            raise ValueError("not I/O")

        with pytest.raises(ValueError):
            retry_io(fails_differently, sleep=lambda _d: None)
        assert len(attempts) == 1

    def test_crash_point_is_never_retried(self):
        attempts = []

        def crashes():
            attempts.append(1)
            raise CrashPoint("site", 1)

        with pytest.raises(CrashPoint):
            retry_io(crashes, sleep=lambda _d: None)
        assert len(attempts) == 1

    def test_custom_retry_on(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise KeyError("transient-ish")
            return "ok"

        assert (
            retry_io(
                flaky,
                RetryPolicy(max_attempts=2, base_delay=0.0),
                sleep=lambda _d: None,
                retry_on=(KeyError,),
            )
            == "ok"
        )
