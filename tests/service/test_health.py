"""Tests for the SERVING -> DEGRADED -> READ_ONLY -> FAILED ladder."""

from repro.service.health import HealthMonitor, HealthState


class TestTransitions:
    def test_starts_serving_and_writable(self):
        monitor = HealthMonitor()
        assert monitor.state is HealthState.SERVING
        assert monitor.can_write
        assert monitor.last_error is None
        assert monitor.severity == 0

    def test_degraded_still_accepts_writes(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("one retry")
        assert monitor.state is HealthState.DEGRADED
        assert monitor.can_write
        assert monitor.last_error == "one retry"

    def test_read_only_and_failed_refuse_writes(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        assert not monitor.can_write
        monitor.mark_failed("profile distrusted")
        assert monitor.state is HealthState.FAILED
        assert not monitor.can_write
        assert monitor.severity == 3

    def test_state_only_worsens(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        monitor.mark_degraded("late retry")  # must not improve the state
        assert monitor.state is HealthState.READ_ONLY
        # ... but the reason is still recorded
        assert monitor.last_error == "late retry"

    def test_transitions_are_logged(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("retry")
        monitor.mark_degraded("again")  # same state: no new transition
        monitor.mark_failed("gone")
        assert [(a, b) for a, b, _ in monitor.transitions] == [
            ("serving", "degraded"),
            ("degraded", "failed"),
        ]
        assert monitor.transitions[0][2] == "retry"


class TestHealing:
    def test_degraded_heals_after_clean_streak(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=3)
        monitor.note_clean_batch(threshold=3)
        assert monitor.state is HealthState.DEGRADED
        monitor.note_clean_batch(threshold=3)
        assert monitor.state is HealthState.SERVING

    def test_new_fault_resets_the_streak(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=2)
        monitor.mark_degraded("another")
        monitor.note_clean_batch(threshold=2)
        assert monitor.state is HealthState.DEGRADED
        monitor.note_clean_batch(threshold=2)
        assert monitor.state is HealthState.SERVING

    def test_zero_threshold_never_heals(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        for _ in range(10):
            monitor.note_clean_batch(threshold=0)
        assert monitor.state is HealthState.DEGRADED

    def test_read_only_does_not_heal(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        for _ in range(10):
            monitor.note_clean_batch(threshold=1)
        assert monitor.state is HealthState.READ_ONLY

    def test_serving_ignores_clean_batches(self):
        monitor = HealthMonitor()
        monitor.note_clean_batch(threshold=1)
        assert monitor.state is HealthState.SERVING
        assert monitor.transitions == []

    def test_healing_is_logged(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=1)
        assert monitor.transitions[-1][:2] == ("degraded", "serving")
