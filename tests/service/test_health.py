"""Tests for the SERVING -> DEGRADED -> READ_ONLY -> FAILED -> PARKED
ladder and the supervisor's restart budget."""

import pytest

from repro.service.health import HealthMonitor, HealthState, RestartBudget


class TestTransitions:
    def test_starts_serving_and_writable(self):
        monitor = HealthMonitor()
        assert monitor.state is HealthState.SERVING
        assert monitor.can_write
        assert monitor.last_error is None
        assert monitor.severity == 0

    def test_degraded_still_accepts_writes(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("one retry")
        assert monitor.state is HealthState.DEGRADED
        assert monitor.can_write
        assert monitor.last_error == "one retry"

    def test_read_only_and_failed_refuse_writes(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        assert not monitor.can_write
        monitor.mark_failed("profile distrusted")
        assert monitor.state is HealthState.FAILED
        assert not monitor.can_write
        assert monitor.severity == 3

    def test_state_only_worsens(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        monitor.mark_degraded("late retry")  # must not improve the state
        assert monitor.state is HealthState.READ_ONLY
        # ... but the reason is still recorded
        assert monitor.last_error == "late retry"

    def test_transitions_are_logged(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("retry")
        monitor.mark_degraded("again")  # same state: no new transition
        monitor.mark_failed("gone")
        assert [(a, b) for a, b, _ in monitor.transitions] == [
            ("serving", "degraded"),
            ("degraded", "failed"),
        ]
        assert monitor.transitions[0][2] == "retry"


class TestHealing:
    def test_degraded_heals_after_clean_streak(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=3)
        monitor.note_clean_batch(threshold=3)
        assert monitor.state is HealthState.DEGRADED
        monitor.note_clean_batch(threshold=3)
        assert monitor.state is HealthState.SERVING

    def test_new_fault_resets_the_streak(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=2)
        monitor.mark_degraded("another")
        monitor.note_clean_batch(threshold=2)
        assert monitor.state is HealthState.DEGRADED
        monitor.note_clean_batch(threshold=2)
        assert monitor.state is HealthState.SERVING

    def test_zero_threshold_never_heals(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        for _ in range(10):
            monitor.note_clean_batch(threshold=0)
        assert monitor.state is HealthState.DEGRADED

    def test_read_only_does_not_heal(self):
        monitor = HealthMonitor()
        monitor.mark_read_only("append exhausted")
        for _ in range(10):
            monitor.note_clean_batch(threshold=1)
        assert monitor.state is HealthState.READ_ONLY

    def test_serving_ignores_clean_batches(self):
        monitor = HealthMonitor()
        monitor.note_clean_batch(threshold=1)
        assert monitor.state is HealthState.SERVING
        assert monitor.transitions == []

    def test_healing_is_logged(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("hiccup")
        monitor.note_clean_batch(threshold=1)
        assert monitor.transitions[-1][:2] == ("degraded", "serving")


class TestParked:
    def test_parked_is_the_worst_state(self):
        monitor = HealthMonitor()
        monitor.mark_parked("restart budget exhausted")
        assert monitor.state is HealthState.PARKED
        assert monitor.severity == 4
        assert not monitor.can_write
        assert monitor.last_error == "restart budget exhausted"

    def test_parked_outranks_failed(self):
        monitor = HealthMonitor()
        monitor.mark_failed("profile distrusted")
        monitor.mark_parked("supervisor gave up")
        assert monitor.state is HealthState.PARKED
        # ... and nothing in-process moves it back down.
        monitor.mark_degraded("late retry")
        for _ in range(10):
            monitor.note_clean_batch(threshold=1)
        assert monitor.state is HealthState.PARKED

    def test_time_in_state_tracks_the_latest_transition(self):
        monitor = HealthMonitor()
        entered = monitor.state_entered_unix
        assert monitor.time_in_state(now=entered + 7.5) == 7.5
        monitor.mark_read_only("append exhausted")
        assert monitor.state_entered_unix >= entered
        # A clock that runs backwards never reports negative age.
        assert monitor.time_in_state(now=monitor.state_entered_unix - 5) == 0.0

    def test_same_state_fault_keeps_the_entry_stamp(self):
        monitor = HealthMonitor()
        monitor.mark_degraded("first")
        entered = monitor.state_entered_unix
        monitor.mark_degraded("second")  # no transition, stamp unchanged
        assert monitor.state_entered_unix == entered


class TestRestartBudget:
    def test_exhausts_after_max_restarts(self):
        budget = RestartBudget(max_restarts=3, window_seconds=100.0)
        assert not budget.exhausted(now=0.0)
        for stamp in (1.0, 2.0):
            budget.record(now=stamp)
            assert not budget.exhausted(now=stamp)
        budget.record(now=3.0)
        assert budget.exhausted(now=3.0)
        assert budget.history() == [1.0, 2.0, 3.0]

    def test_window_forgives_old_restarts(self):
        budget = RestartBudget(max_restarts=2, window_seconds=10.0)
        budget.record(now=0.0)
        budget.record(now=1.0)
        assert budget.exhausted(now=5.0)
        # The first restart ages out of the rolling window.
        assert not budget.exhausted(now=10.5)
        assert budget.history() == [1.0]
        budget.record(now=10.6)
        assert budget.exhausted(now=10.7)

    def test_rejects_nonsense_limits(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartBudget(max_restarts=0)
        with pytest.raises(ValueError, match="window_seconds"):
            RestartBudget(window_seconds=0.0)
