"""Integration tests for the ``repro-serve`` CLI.

These call ``main()`` in-process (argparse + capsys) and also run one
full first-boot -> crash -> recovery cycle through a subprocess, the
way an operator would.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.service.cli import main as serve_main
from repro.service.server import CHANGELOG_NAME, SpoolDirectorySource
from repro.storage.relation import Relation
from repro.storage.schema import Schema

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


@pytest.fixture
def csv_path(tmp_path):
    relation = Relation.from_rows(
        Schema(["Name", "Phone", "Age"]),
        [
            ("Lee", "345", "20"),
            ("Payne", "245", "30"),
            ("Lee", "234", "30"),
        ],
    )
    path = str(tmp_path / "data.csv")
    relation.to_csv(path)
    return path


class TestServeMain:
    def test_requires_init_on_first_boot(self, tmp_path, capsys):
        assert serve_main([str(tmp_path / "state")]) == 2
        assert "--init" in capsys.readouterr().err

    def test_first_boot_then_status(self, tmp_path, csv_path, capsys):
        state = str(tmp_path / "state")
        assert serve_main([state, "--init", csv_path, "--no-fsync"]) == 0
        out = capsys.readouterr().out
        assert "first boot" in out
        assert "stopped: 3 rows" in out

        assert serve_main([state, "--status"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["gauges"]["live_rows"] == 3

    def test_parallelism_and_cache_flags(self, tmp_path, csv_path, capsys):
        state = str(tmp_path / "state")
        assert (
            serve_main(
                [
                    state,
                    "--init",
                    csv_path,
                    "--no-fsync",
                    "--parallelism",
                    "2",
                    "--cache-budget-mb",
                    "8",
                ]
            )
            == 0
        )
        status = json.load(open(os.path.join(state, "status.json")))
        assert status["gauges"]["pool_workers"] == 2

    def test_negative_parallelism_rejected(self, tmp_path, csv_path, capsys):
        assert (
            serve_main(
                [str(tmp_path / "state"), "--init", csv_path, "--parallelism", "-1"]
            )
            == 2
        )
        assert "parallelism" in capsys.readouterr().err

    def test_negative_cache_budget_rejected(self, tmp_path, csv_path, capsys):
        assert (
            serve_main(
                [
                    str(tmp_path / "state"),
                    "--init",
                    csv_path,
                    "--cache-budget-mb",
                    "-4",
                ]
            )
            == 2
        )
        assert "cache-budget" in capsys.readouterr().err

    def test_shards_flag_builds_sharded_profiler(self, tmp_path, csv_path):
        state = str(tmp_path / "state")
        assert (
            serve_main(
                [state, "--init", csv_path, "--no-fsync", "--shards", "2"]
            )
            == 0
        )
        status = json.load(open(os.path.join(state, "status.json")))
        assert status["gauges"]["shard_count"] == 2
        assert (
            status["gauges"]["shard_rows0"] + status["gauges"]["shard_rows1"]
            == 3
        )

    def test_invalid_shards_rejected(self, tmp_path, csv_path, capsys):
        assert (
            serve_main(
                [str(tmp_path / "state"), "--init", csv_path, "--shards", "0"]
            )
            == 2
        )
        assert "shards" in capsys.readouterr().err

    def test_shard_insert_only_rejects_spooled_deletes(
        self, tmp_path, csv_path, capsys
    ):
        state = str(tmp_path / "state")
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "b1.json", {"kind": "delete", "ids": [0]}
        )
        # The delete is rejected at admission (before the changelog),
        # quarantined, and the service keeps serving.
        assert (
            serve_main(
                [
                    state,
                    "--init",
                    csv_path,
                    "--no-fsync",
                    "--shards",
                    "2",
                    "--shard-insert-only",
                    "--spool",
                    spool,
                    "--once",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "1 dead-letter entry" in captured.err
        assert "stopped: 3 rows" in captured.out

    def test_status_without_state(self, tmp_path, capsys):
        assert serve_main([str(tmp_path / "state"), "--status"]) == 1
        assert "no status file" in capsys.readouterr().err

    def test_unreadable_init_csv(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.csv")
        assert serve_main([str(tmp_path / "state"), "--init", missing]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_poison_spool_file_quarantined_and_reported(
        self, tmp_path, csv_path, capsys
    ):
        state = str(tmp_path / "state")
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        with open(os.path.join(spool, "bad.json"), "w") as handle:
            handle.write("not json at all")
        # Poison no longer fail-stops: the file is quarantined, the
        # drain succeeds, and the degradation is reported on stderr.
        assert (
            serve_main(
                [state, "--init", csv_path, "--spool", spool, "--once", "--no-fsync"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "1 dead-letter entry" in captured.err
        assert "health is degraded" in captured.err
        assert "stopped: 3 rows" in captured.out
        # the bad file moved to quarantine with a reason record
        assert not os.path.exists(os.path.join(spool, "bad.json"))
        deadletter = os.path.join(state, "deadletter")
        assert os.path.exists(os.path.join(deadletter, "bad.json"))
        with open(os.path.join(deadletter, "bad.json.reason.json")) as handle:
            record = json.load(handle)
        assert "is not a valid batch" in record["reason"]

    def test_spool_once_and_recovery(self, tmp_path, csv_path, capsys):
        state = str(tmp_path / "state")
        spool = str(tmp_path / "spool")
        assert serve_main([state, "--init", csv_path, "--no-fsync"]) == 0
        SpoolDirectorySource.write_batch(
            spool, "b1.json", {"kind": "insert", "rows": [["Ada", "111", "9"]]}
        )
        SpoolDirectorySource.write_batch(
            spool, "b2.json", {"kind": "delete", "ids": [0]}
        )
        capsys.readouterr()
        assert (
            serve_main([state, "--spool", spool, "--once", "--no-fsync"]) == 0
        )
        out = capsys.readouterr().out
        assert "recovered via snapshot+replay" in out
        assert "applied 2 batch(es)" in out
        assert "stopped: 3 rows" in out
        assert sorted(os.listdir(os.path.join(spool, "done"))) == [
            "b1.json",
            "b2.json",
        ]

    def test_init_ignored_when_state_exists(self, tmp_path, csv_path, capsys):
        state = str(tmp_path / "state")
        assert serve_main([state, "--init", csv_path, "--no-fsync"]) == 0
        capsys.readouterr()
        assert serve_main([state, "--init", csv_path, "--no-fsync"]) == 0
        assert "--init is ignored" in capsys.readouterr().out

    def test_watch_events_printed(self, tmp_path, csv_path, capsys):
        state = str(tmp_path / "state")
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool,
            "b1.json",
            {"kind": "insert", "rows": [["Payne", "245", "31"]]},
        )
        assert (
            serve_main(
                [
                    state,
                    "--init",
                    csv_path,
                    "--watch",
                    "Phone",
                    "--spool",
                    spool,
                    "--once",
                    "--no-fsync",
                ]
            )
            == 0
        )
        assert "{Phone}" in capsys.readouterr().out


class TestServeSubprocess:
    def _run(self, args, stdin=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.service.cli", *args],
            input=stdin,
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )

    def test_boot_crash_recover_cycle(self, tmp_path, csv_path):
        state = str(tmp_path / "state")
        boot = self._run([state, "--init", csv_path, "--stdin"], stdin="Ada,111,9\n")
        assert boot.returncode == 0, boot.stderr[-2000:]
        assert "applied 1 batch(es) from stdin" in boot.stdout

        # crash simulation: tear the last changelog record in half
        log_path = os.path.join(state, CHANGELOG_NAME)
        more = self._run(
            [state, "--stdin", "--no-fsync", "--snapshot-every", "0"],
            stdin="Bob,222,8\nCal,333,7\n!delete,0\n",
        )
        assert more.returncode == 0, more.stderr[-2000:]
        with open(log_path, "r+b") as handle:
            handle.truncate(os.path.getsize(log_path) - 7)

        recovered = self._run([state, "--status"])
        assert recovered.returncode == 0
        restarted = self._run([state, "--stdin"], stdin="")
        assert restarted.returncode == 0, restarted.stderr[-2000:]
        assert "recovered via snapshot+replay" in restarted.stdout
        assert "torn byte(s)" in restarted.stdout
