"""Unit tests for the write-ahead changelog: framing, torn writes,
corruption detection, sequence discipline, rotation."""

import os

import pytest

from repro.errors import ChangelogCorruptionError
from repro.service.changelog import (
    DELETE,
    INSERT,
    Changelog,
    read_records,
    scan_file,
)


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "changelog.wal")


class TestAppendAndReplay:
    def test_round_trip(self, log_path):
        with Changelog(log_path) as log:
            r1 = log.append_inserts([("a", "1"), ("b", "2")])
            r2 = log.append_deletes([0], tokens=["batch-7.json"])
            assert (r1.seq, r2.seq) == (1, 2)
            assert log.last_seq == 2
        records = list(read_records(log_path))
        assert [r.seq for r in records] == [1, 2]
        assert records[0].kind == INSERT
        assert records[0].rows == (("a", "1"), ("b", "2"))
        assert records[1].kind == DELETE
        assert records[1].tuple_ids == (0,)
        assert records[1].tokens == ("batch-7.json",)

    def test_after_filter(self, log_path):
        with Changelog(log_path) as log:
            for i in range(5):
                log.append_inserts([(str(i),)])
        assert [r.seq for r in read_records(log_path, after=3)] == [4, 5]

    def test_empty_file_and_missing_file(self, log_path):
        assert list(read_records(log_path)) == []
        open(log_path, "w").close()
        assert list(read_records(log_path)) == []

    def test_n_rows(self, log_path):
        with Changelog(log_path) as log:
            ins = log.append_inserts([("a",), ("b",)])
            dele = log.append_deletes([4, 5, 6])
        assert ins.n_rows == 2
        assert dele.n_rows == 3

    def test_reopen_continues_sequence(self, log_path):
        with Changelog(log_path) as log:
            log.append_inserts([("a",)])
        with Changelog(log_path) as log:
            assert log.last_seq == 1
            assert log.append_inserts([("b",)]).seq == 2
        assert [r.seq for r in read_records(log_path)] == [1, 2]


class TestTornWrites:
    def _write(self, log_path, n=3):
        with Changelog(log_path) as log:
            for i in range(n):
                log.append_inserts([(f"row{i}", str(i))])
        return os.path.getsize(log_path)

    def test_torn_tail_is_detected_and_skipped(self, log_path):
        size = self._write(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 3)
        scan = scan_file(log_path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.torn_bytes > 0
        assert scan.error is not None
        # non-strict replay stops cleanly; strict raises
        assert [r.seq for r in read_records(log_path)] == [1, 2]
        with pytest.raises(ChangelogCorruptionError):
            list(read_records(log_path, strict=True))

    def test_reopen_truncates_torn_tail(self, log_path):
        size = self._write(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 1)
        with Changelog(log_path) as log:
            assert log.last_seq == 2
            assert log.recovered_torn_bytes > 0
            log.append_inserts([("fresh", "x")])
        scan = scan_file(log_path)
        assert scan.error is None
        assert [r.seq for r in scan.records] == [1, 2, 3]

    def test_every_truncation_point_yields_committed_prefix(self, log_path):
        """Cutting the file anywhere loses at most the torn record."""
        self._write(log_path, n=4)
        data = open(log_path, "rb").read()
        for cut in range(len(data) + 1):
            with open(log_path, "wb") as handle:
                handle.write(data[:cut])
            scan = scan_file(log_path)
            seqs = [r.seq for r in scan.records]
            assert seqs == list(range(1, len(seqs) + 1))

    def test_header_only_torn(self, log_path):
        with open(log_path, "wb") as handle:
            handle.write(b"SWAN")  # half a magic
        scan = scan_file(log_path)
        assert scan.records == () and scan.error is not None
        with Changelog(log_path) as log:  # rewrites a clean header
            log.append_inserts([("a",)])
        assert [r.seq for r in read_records(log_path)] == [1]


class TestCorruption:
    def test_flipped_byte_mid_file(self, log_path):
        with Changelog(log_path) as log:
            for i in range(3):
                log.append_inserts([(f"row{i}",)])
        data = bytearray(open(log_path, "rb").read())
        data[30] ^= 0xFF  # inside record 1's frame
        open(log_path, "wb").write(bytes(data))
        with pytest.raises(ChangelogCorruptionError):
            list(read_records(log_path, strict=True))
        assert list(read_records(log_path)) == []

    def test_bad_magic(self, log_path):
        open(log_path, "wb").write(b"NOTALOG!" + b"\0" * 16)
        with pytest.raises(ChangelogCorruptionError):
            list(read_records(log_path, strict=True))

    def test_non_contiguous_append_rejected(self, log_path):
        from repro.service.changelog import ChangelogRecord

        with Changelog(log_path) as log:
            log.append_inserts([("a",)])
            with pytest.raises(ChangelogCorruptionError):
                log.append_record(ChangelogRecord(5, INSERT, rows=(("b",),)))


class TestRotation:
    def test_ensure_at_keeps_up_to_date_log(self, log_path):
        with Changelog(log_path) as log:
            log.append_inserts([("a",)])
        with Changelog.ensure_at(log_path, 1) as log:
            assert log.last_seq == 1
        assert not os.path.exists(log_path + ".stale")

    def test_ensure_at_rotates_stale_log(self, log_path):
        with Changelog(log_path) as log:
            log.append_inserts([("a",)])
        # a snapshot claims seq 5 but the log only reaches 1
        with Changelog.ensure_at(log_path, 5) as log:
            assert log.last_seq == 5
            assert log.append_inserts([("b",)]).seq == 6
        assert os.path.exists(log_path + ".stale")
        assert [r.seq for r in read_records(log_path)] == [6]

    def test_fresh_log_with_base(self, log_path):
        with Changelog(log_path, base_seq=9) as log:
            assert log.last_seq == 9
            log.append_inserts([("a",)])
        assert [r.seq for r in read_records(log_path)] == [10]
