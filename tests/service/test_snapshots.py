"""Unit tests for the snapshot manager: durability, validation,
tuple-ID fidelity, retention."""

import json
import os

import pytest

from repro.core.repository import Profile
from repro.errors import RecoveryError
from repro.service.snapshots import SnapshotManager
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(["Name", "Phone", "Age"])
    return Relation.from_rows(
        schema,
        [
            ("Lee", "345", "20"),
            ("Payne", "245", "30"),
            ("Lee", "234", "30"),
        ],
    )


@pytest.fixture
def profile():
    return Profile.from_masks([0b010, 0b101], [0b011, 0b110])


@pytest.fixture
def manager(tmp_path):
    return SnapshotManager(str(tmp_path / "snaps"), retain=2)


class TestRoundTrip:
    def test_save_and_load(self, manager, relation, profile):
        manager.save(relation, profile, seq=7, watches=[("Phone",)])
        snapshot = manager.load(7)
        assert snapshot.seq == 7
        assert snapshot.watches == (("Phone",),)
        rebuilt = snapshot.build_relation()
        assert list(rebuilt.iter_items()) == list(relation.iter_items())
        assert rebuilt.next_tuple_id == relation.next_tuple_id
        mucs, mnucs = snapshot.stored_profile.masks_for(rebuilt.schema)
        assert sorted(mucs) == sorted(profile.mucs)
        assert sorted(mnucs) == sorted(profile.mnucs)

    def test_tombstones_preserved(self, manager, relation, profile):
        relation.delete(1)
        manager.save(relation, profile, seq=3)
        rebuilt = manager.load(3).build_relation()
        assert list(rebuilt.iter_ids()) == [0, 2]
        assert rebuilt.next_tuple_id == 3
        assert not rebuilt.is_live(1)
        # replayed inserts must get the same IDs the live run handed out
        assert rebuilt.insert(("New", "999", "1")) == 3

    def test_recent_tokens_round_trip(self, manager, relation, profile):
        manager.save(relation, profile, seq=1, recent_tokens=["a.json", "b.json"])
        assert manager.load(1).recent_tokens == ("a.json", "b.json")

    def test_latest_seq(self, manager, relation, profile):
        assert manager.latest_seq() is None
        manager.save(relation, profile, seq=1)
        manager.save(relation, profile, seq=9)
        assert manager.latest_seq() == 9


class TestTypeFidelity:
    """rows.jsonl must preserve cell *types* (int 1 vs str '1' decide
    distinctness) and values with embedded newlines."""

    def test_cell_types_survive_round_trip(self, manager, profile):
        schema = Schema(["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [(1, "1", None), (2.5, True, ("x", 3))],
        )
        manager.save(relation, profile, seq=1)
        rebuilt = manager.load(1).build_relation()
        assert list(rebuilt.iter_items()) == list(relation.iter_items())

    def test_newline_and_quote_cells_survive(self, manager, profile):
        schema = Schema(["A", "B", "C"])
        relation = Relation.from_rows(
            schema, [("a\nb", "c,d", 'e"f'), ("x", "y", "z")]
        )
        manager.save(relation, profile, seq=1)
        rebuilt = manager.load(1).build_relation()
        assert list(rebuilt.iter_items()) == list(relation.iter_items())


class TestValidation:
    def test_missing_snapshot(self, manager):
        with pytest.raises(RecoveryError):
            manager.load(42)

    def test_rows_corruption_detected(self, manager, relation, profile):
        path = manager.save(relation, profile, seq=1)
        rows = os.path.join(path, "rows.jsonl")
        data = open(rows, "rb").read()
        open(rows, "wb").write(data[:-3] + b'X"]\n')
        with pytest.raises(RecoveryError, match="checksum"):
            manager.load(1)

    def test_meta_corruption_detected(self, manager, relation, profile):
        path = manager.save(relation, profile, seq=1)
        open(os.path.join(path, "meta.json"), "w").write("{not json")
        with pytest.raises(RecoveryError):
            manager.load(1)

    def test_profile_corruption_detected(self, manager, relation, profile):
        path = manager.save(relation, profile, seq=1)
        open(os.path.join(path, "profile.json"), "w").write("[]")
        with pytest.raises(RecoveryError):
            manager.load(1)

    def test_seq_mismatch_detected(self, manager, relation, profile):
        path = manager.save(relation, profile, seq=1)
        meta_path = os.path.join(path, "meta.json")
        meta = json.load(open(meta_path))
        meta["seq"] = 99
        json.dump(meta, open(meta_path, "w"))
        with pytest.raises(RecoveryError, match="declares"):
            manager.load(1)


class TestRetentionAndAtomicity:
    def test_prune_keeps_newest(self, manager, relation, profile):
        for seq in (1, 2, 3, 4):
            manager.save(relation, profile, seq=seq)
        assert manager.list_seqs() == [3, 4]

    def test_temp_dirs_swept_on_startup(self, tmp_path, relation, profile):
        directory = str(tmp_path / "snaps")
        manager = SnapshotManager(directory)
        manager.save(relation, profile, seq=1)
        # simulate a crash mid-write: a temp dir left behind
        leftover = os.path.join(directory, ".tmp-snapshot-00000000000000000002")
        os.makedirs(leftover)
        open(os.path.join(leftover, "rows.jsonl"), "w").write("garbage")
        fresh = SnapshotManager(directory)
        assert not os.path.exists(leftover)
        assert fresh.list_seqs() == [1]

    def test_resave_same_seq_overwrites(self, manager, relation, profile):
        manager.save(relation, profile, seq=5)
        relation.insert(("New", "777", "2"))
        manager.save(relation, profile, seq=5)
        assert manager.load(5).next_tuple_id == 4
