"""Invariant-sentinel tests: structure checks, sampled spot checks, and
the quarantine-and-rebuild path on a diverged service profile."""

import os

import pytest

from repro.core.swan import SwanProfiler
from repro.errors import InconsistentProfileError
from repro.service.health import HealthState
from repro.service.sentinel import InvariantSentinel, check_structure
from repro.service.server import (
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]
# Ground truth for ROWS: MUCS = {Phone}, {Name, Age}; MNUCS = {Name}, {Age}
NAME, PHONE, AGE = 0b001, 0b010, 0b100


def fresh_relation():
    return Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)


def fresh_profiler():
    return SwanProfiler.profile(fresh_relation(), algorithm="bruteforce")


def make_service(tmp_path, **overrides):
    defaults = dict(algorithm="bruteforce", snapshot_every=0, coalesce_rows=1)
    defaults.update(overrides)
    return ProfilingService(
        str(tmp_path / "state"), config=ServiceConfig(**defaults)
    )


class TestCheckStructure:
    def test_valid_profile_passes(self):
        check_structure([PHONE, NAME | AGE], [NAME, AGE])

    def test_comparable_mucs_rejected(self):
        with pytest.raises(InconsistentProfileError, match="not an antichain"):
            check_structure([NAME, NAME | AGE], [])

    def test_comparable_mnucs_rejected(self):
        with pytest.raises(InconsistentProfileError, match="not an antichain"):
            check_structure([], [AGE, NAME | AGE])

    def test_muc_inside_mnuc_rejected(self):
        with pytest.raises(InconsistentProfileError, match="subset of MNUC"):
            check_structure([NAME], [NAME | AGE])


class TestSampledCheck:
    def test_correct_profile_passes(self):
        sentinel = InvariantSentinel()
        report = sentinel.check(fresh_profiler())
        assert not report.full
        assert report.checked_mucs == 2
        assert report.checked_mnucs == 2
        assert report.sampled_pairs > 0

    def test_full_check_delegates_to_verify_profile(self):
        report = InvariantSentinel().check(fresh_profiler(), full=True)
        assert report.full

    def test_false_muc_detected(self):
        profiler = fresh_profiler()
        # {Name} has a duplicate (Lee), so claiming it unique is wrong
        # -- but structurally valid, so only a relation scan can tell.
        profiler._repository.replace([NAME], [])
        with pytest.raises(InconsistentProfileError):
            InvariantSentinel().check(profiler)

    def test_false_mnuc_detected(self):
        profiler = fresh_profiler()
        # {Phone} is unique, so claiming it non-unique is wrong.
        profiler._repository.replace([], [PHONE])
        with pytest.raises(InconsistentProfileError):
            InvariantSentinel().check(profiler)

    def test_missing_mnuc_cover_detected(self):
        profiler = fresh_profiler()
        # Keep the true MUCS but drop {Name} from MNUCS: the agree set
        # of the two Lee rows is then covered by no reported MNUC.
        profiler._repository.replace([PHONE, NAME | AGE], [AGE])
        with pytest.raises(InconsistentProfileError):
            InvariantSentinel().check(profiler)

    def test_deterministic_given_seed(self):
        reports = [
            InvariantSentinel(seed=5).check(fresh_profiler()).sampled_pairs
            for _ in range(2)
        ]
        assert reports[0] == reports[1]


class TestServiceDivergenceHealing:
    def _poison_profile(self, service):
        service.profiler._repository.replace([NAME], [])

    def test_divergence_quarantines_state_and_rebuilds(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        self._poison_profile(service)
        assert service.run_sentinel() is False

        # The distrusted changelog + snapshots moved to the dead-letter
        # directory for forensics...
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert record["name"].startswith("state-seq")
        quarantined = os.path.join(
            service.dead_letters.directory, record["name"]
        )
        assert os.path.exists(os.path.join(quarantined, "changelog.wal"))
        assert os.path.exists(os.path.join(quarantined, "snapshots"))

        # ...and the served profile is correct again, from a holistic
        # re-profile of the live relation.
        assert service.run_sentinel(full=True) is True
        assert sorted(service.profiler.snapshot().mucs) == [
            PHONE, NAME | AGE,
        ]
        assert service.health.state is HealthState.DEGRADED
        assert "sentinel divergence healed" in service.health.last_error
        assert service.metrics.counter("sentinel_rebuilds").value == 1

        # The service keeps working: new durable state was reseeded.
        service.apply_insert_batch([("Ada", "111", "9")])
        assert len(service.profiler.relation) == 4
        service.stop()

        # And a restart recovers from the rebuilt state.
        recovered = make_service(tmp_path).start()
        assert len(recovered.profiler.relation) == 4
        assert recovered.run_sentinel(full=True) is True
        recovered.stop()

    def test_sentinel_runs_on_batch_cadence(self, tmp_path):
        service = make_service(tmp_path, sentinel_every=2).start(
            initial=fresh_relation()
        )
        spool = str(tmp_path / "spool")
        for i, row in enumerate([["Ada", "111", "9"], ["Bob", "222", "8"]]):
            SpoolDirectorySource.write_batch(
                spool, f"b{i}.json", {"kind": "insert", "rows": [row]}
            )
        service.serve(SpoolDirectorySource(spool))
        assert service.metrics.counter("sentinel_checks").value == 1
        service.stop()

    def test_sentinel_cadence_catches_poisoned_profile(self, tmp_path):
        service = make_service(tmp_path, sentinel_every=1).start(
            initial=fresh_relation()
        )
        self._poison_profile(service)
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "b0.json", {"kind": "insert", "rows": [["Ada", "111", "9"]]}
        )
        service.serve(SpoolDirectorySource(spool))
        assert service.metrics.counter("sentinel_failures").value == 1
        assert service.run_sentinel(full=True) is True
        assert len(service.profiler.relation) == 4
        service.stop()

    def test_passing_sentinel_leaves_health_alone(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        assert service.run_sentinel() is True
        assert service.health.state is HealthState.SERVING
        assert service.dead_letters.count() == 0
        service.stop()

    def test_status_reports_health_fields(self, tmp_path):
        import json

        service = make_service(tmp_path).start(initial=fresh_relation())
        self._poison_profile(service)
        service.run_sentinel()
        service.write_status()
        with open(os.path.join(service.data_dir, "status.json")) as handle:
            status = json.load(handle)
        assert status["health"] == "degraded"
        assert "sentinel divergence healed" in status["last_error"]
        assert status["dead_letters"] == 1
        service.stop()
