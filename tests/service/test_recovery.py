"""Recovery-path tests: snapshot + suffix replay, fallback chains."""

import os

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.errors import RecoveryError
from repro.profiling.verify import verify_profile
from repro.service.changelog import Changelog
from repro.service.recovery import recover
from repro.service.snapshots import SnapshotManager
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
    ("Ada", "111", "25"),
]


def fresh_relation():
    return Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)


def build_state(tmp_path, snapshot_at=(0,), batches=()):
    """Run a live profiler over ``batches``, snapshotting at the listed
    sequence numbers; returns (snapshots, log path, live profiler)."""
    snapshots = SnapshotManager(str(tmp_path / "snaps"))
    log_path = str(tmp_path / "changelog.wal")
    relation = fresh_relation()
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    with Changelog(log_path) as log:
        if 0 in snapshot_at:
            snapshots.save(relation, profiler.snapshot(), 0)
        for kind, payload in batches:
            if kind == "insert":
                log.append_inserts(payload)
                profiler.handle_inserts(payload)
            else:
                log.append_deletes(payload)
                profiler.handle_deletes(payload)
            if log.last_seq in snapshot_at:
                snapshots.save(relation, profiler.snapshot(), log.last_seq)
    return snapshots, log_path, profiler


BATCHES = [
    ("insert", [("Payne", "245", "31"), ("Zed", "999", "1")]),
    ("delete", [0, 2]),
    ("insert", [("Lee", "345", "20")]),
]


def assert_matches_live(result, live_profiler):
    live = live_profiler.snapshot()
    recovered = result.profiler.snapshot()
    assert sorted(recovered.mucs) == sorted(live.mucs)
    assert sorted(recovered.mnucs) == sorted(live.mnucs)
    assert list(result.profiler.relation.iter_items()) == list(
        live_profiler.relation.iter_items()
    )
    verify_profile(
        result.profiler.relation, recovered.mucs, recovered.mnucs, exhaustive=True
    )


class TestHappyPath:
    def test_replay_from_seq0_snapshot(self, tmp_path):
        snapshots, log_path, live = build_state(tmp_path, batches=BATCHES)
        result = recover(snapshots, log_path)
        assert result.snapshot_seq == 0
        assert result.replayed_records == 3
        assert result.source == "snapshot+replay"
        assert_matches_live(result, live)

    def test_replay_from_newest_snapshot(self, tmp_path):
        snapshots, log_path, live = build_state(
            tmp_path, snapshot_at=(0, 2), batches=BATCHES
        )
        result = recover(snapshots, log_path)
        assert result.snapshot_seq == 2
        assert result.replayed_records == 1
        assert_matches_live(result, live)

    def test_no_suffix_to_replay(self, tmp_path):
        snapshots, log_path, live = build_state(
            tmp_path, snapshot_at=(0, 3), batches=BATCHES
        )
        result = recover(snapshots, log_path)
        assert result.snapshot_seq == 3
        assert result.replayed_records == 0
        assert_matches_live(result, live)

    def test_torn_tail_discarded(self, tmp_path):
        snapshots, log_path, live = build_state(tmp_path, batches=BATCHES[:2])
        with open(log_path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00partial-frame")
        result = recover(snapshots, log_path)
        assert result.torn_bytes_discarded > 0
        assert result.replayed_records == 2
        assert_matches_live(result, live)


def corrupt_snapshot(snapshots, seq):
    path = os.path.join(
        snapshots.directory, f"snapshot-{seq:020d}", "rows.jsonl"
    )
    with open(path, "ab") as handle:
        handle.write(b"corrupt-bytes\n")


class TestFallbacks:
    def _corrupt(self, snapshots, seq):
        corrupt_snapshot(snapshots, seq)

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        snapshots, log_path, live = build_state(
            tmp_path, snapshot_at=(0, 2), batches=BATCHES
        )
        self._corrupt(snapshots, 2)
        result = recover(snapshots, log_path)
        assert result.snapshot_seq == 0
        assert result.replayed_records == 3
        assert result.skipped_snapshots  # the damage is reported
        assert_matches_live(result, live)

    def test_all_corrupt_uses_holistic_fallback(self, tmp_path):
        snapshots, log_path, live = build_state(
            tmp_path, snapshot_at=(0, 2), batches=BATCHES
        )
        self._corrupt(snapshots, 0)
        self._corrupt(snapshots, 2)

        def fallback():
            relation = fresh_relation()
            mucs, mnucs = discover_bruteforce(relation)
            return relation, mucs, mnucs

        result = recover(snapshots, log_path, holistic_fallback=fallback)
        assert result.source == "holistic"
        assert result.replayed_records == 3
        assert_matches_live(result, live)

    def test_all_corrupt_without_fallback_raises(self, tmp_path):
        snapshots, log_path, _ = build_state(tmp_path, batches=BATCHES)
        self._corrupt(snapshots, 0)
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            recover(snapshots, log_path)

    def test_no_snapshots_without_fallback_raises(self, tmp_path):
        snapshots = SnapshotManager(str(tmp_path / "snaps"))
        with pytest.raises(RecoveryError, match="no snapshots found"):
            recover(snapshots, str(tmp_path / "changelog.wal"))


class TestPoisonRecords:
    """A committed record that cannot apply (only possible on tampered
    or externally written logs -- the service validates before logging)
    must surface as RecoveryError, not an unhandled profiler error."""

    def test_poison_record_reported_as_recovery_error(self, tmp_path):
        snapshots, log_path, _ = build_state(tmp_path, batches=BATCHES[:1])
        with Changelog(log_path) as log:
            log.append_inserts([("only", "two")])  # wrong arity
        with pytest.raises(RecoveryError, match="failed to apply"):
            recover(snapshots, log_path)

    def test_poison_delete_reported_as_recovery_error(self, tmp_path):
        snapshots, log_path, _ = build_state(tmp_path, batches=BATCHES[:1])
        with Changelog(log_path) as log:
            log.append_deletes([999])  # no such tuple
        with pytest.raises(RecoveryError, match="failed to apply"):
            recover(snapshots, log_path)


class TestRotatedChangelog:
    """An older snapshot predating the log's base_seq cannot replay to
    the committed state (the gap was rotated away) and must never be
    used silently."""

    def _rotated_state(self, tmp_path):
        snapshots, log_path, live = build_state(
            tmp_path, snapshot_at=(0, 3), batches=BATCHES
        )
        # simulate Changelog.ensure_at rotation under the seq-3 snapshot
        os.remove(log_path)
        Changelog(log_path, base_seq=3).close()
        return snapshots, log_path, live

    def test_snapshot_at_base_seq_still_recovers(self, tmp_path):
        snapshots, log_path, live = self._rotated_state(tmp_path)
        result = recover(snapshots, log_path)
        assert result.snapshot_seq == 3
        assert result.replayed_records == 0
        assert_matches_live(result, live)

    def test_stale_snapshot_not_silently_used(self, tmp_path):
        snapshots, log_path, _ = self._rotated_state(tmp_path)
        corrupt_snapshot(snapshots, 3)
        with pytest.raises(RecoveryError, match="rotated away"):
            recover(snapshots, log_path)

    def test_holistic_fallback_refused_after_rotation(self, tmp_path):
        snapshots, log_path, _ = self._rotated_state(tmp_path)
        corrupt_snapshot(snapshots, 3)

        def fallback():  # pragma: no cover - must not be called
            raise AssertionError("holistic fallback must not run")

        with pytest.raises(RecoveryError, match="holistic fallback impossible"):
            recover(snapshots, log_path, holistic_fallback=fallback)
