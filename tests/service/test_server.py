"""Service-loop tests: commit protocol, sources, coalescing,
crash/restart, observability."""

import io
import json
import os

import pytest

from repro.core.monitor import EventKind
from repro.errors import ProfileStateError, WorkloadError
from repro.profiling.verify import verify_profile
from repro.service.server import (
    Batch,
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
    StdinCSVSource,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def fresh_relation():
    return Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)


def make_service(tmp_path, **overrides):
    defaults = dict(algorithm="bruteforce", snapshot_every=0)
    defaults.update(overrides)
    return ProfilingService(
        str(tmp_path / "state"), config=ServiceConfig(**defaults)
    )


class TestLifecycle:
    def test_requires_initial_or_state(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ProfileStateError, match="no durable state"):
            service.start()

    def test_double_start_rejected(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        with pytest.raises(ProfileStateError, match="already started"):
            service.start()
        service.stop()

    def test_profiler_requires_start(self, tmp_path):
        with pytest.raises(ProfileStateError):
            make_service(tmp_path).profiler

    def test_bootstrap_takes_seq0_snapshot(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        assert service.snapshots.list_seqs() == [0]
        service.stop()

    def test_context_manager_stops(self, tmp_path):
        with make_service(tmp_path).start(initial=fresh_relation()) as service:
            service.apply_insert_batch([("Ada", "111", "9")])
        assert not service.started

    def test_second_service_on_same_dir_rejected(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        with pytest.raises(ProfileStateError, match="locked by another"):
            make_service(tmp_path).start()
        service.stop()
        # the lock dies with the holder; a successor can start
        make_service(tmp_path).start().stop()

    def test_failed_start_releases_lock(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ProfileStateError, match="no durable state"):
            service.start()
        make_service(tmp_path).start(initial=fresh_relation()).stop()

    def test_start_failing_after_lock_releases_it(self, tmp_path):
        # An I/O fault deep inside _start_locked (changelog open) must
        # not leave the directory locked against the restart that
        # would heal it.
        from repro.faults import FaultInjector, FaultPlan, active

        service = make_service(tmp_path)
        injector = FaultInjector(FaultPlan.persistent("changelog.open"))
        with active(injector):
            with pytest.raises(OSError):
                service.start(initial=fresh_relation())
        assert service._lock_handle is None
        # successor acquires the lock freely
        make_service(tmp_path).start(initial=fresh_relation()).stop()

    def test_stop_failing_midway_still_releases_lock(self, tmp_path):
        # The final snapshot is best-effort (retried, then degraded),
        # but even a changelog close that explodes must not hold the
        # flock past stop().
        service = make_service(tmp_path).start(initial=fresh_relation())

        class ExplodingChangelog:
            last_seq = 0

            def close(self):
                raise OSError("close failed")

        service._changelog = ExplodingChangelog()
        with pytest.raises(OSError, match="close failed"):
            service.stop()
        assert service._lock_handle is None
        assert not service.started
        make_service(tmp_path).start().stop()

    def test_simulate_crash_releases_lock_without_snapshot(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.apply_insert_batch([("Ada", "111", "9")])
        seqs_before = service.snapshots.list_seqs()
        service.simulate_crash()
        assert service._lock_handle is None
        assert not service.started
        # no orderly-shutdown snapshot was taken
        recovered = make_service(tmp_path)
        assert recovered.snapshots.list_seqs() == seqs_before
        recovered.start()
        assert len(recovered.profiler.relation) == 4
        recovered.stop()


class TestCrashRecovery:
    def test_crash_then_recover_matches_live(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.apply_insert_batch([("Payne", "245", "31")])
        service.apply_delete_batch([0])
        live = service.profiler.snapshot()
        # crash: no stop(), no final snapshot
        del service

        recovered = make_service(tmp_path).start()
        assert recovered.last_recovery is not None
        assert recovered.last_recovery.replayed_records == 2
        profile = recovered.profiler.snapshot()
        assert sorted(profile.mucs) == sorted(live.mucs)
        assert sorted(profile.mnucs) == sorted(live.mnucs)
        verify_profile(
            recovered.profiler.relation,
            profile.mucs,
            profile.mnucs,
            exhaustive=True,
        )
        recovered.stop()

    def test_clean_stop_recovers_without_replay(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.apply_insert_batch([("Payne", "245", "31")])
        service.stop()
        recovered = make_service(tmp_path).start()
        assert recovered.last_recovery.replayed_records == 0
        assert len(recovered.profiler.relation) == 4
        recovered.stop()

    def test_watch_states_survive_recovery(self, tmp_path):
        service = make_service(tmp_path, watches=(("Phone",),)).start(
            initial=fresh_relation()
        )
        assert service.monitor.watched_labels() == ["{Phone}"]
        service.apply_insert_batch([("Payne", "245", "31")])  # breaks {Phone}
        live_holds = [key.holds for key in service.monitor._watched]
        del service

        recovered = make_service(tmp_path).start()
        assert recovered.monitor.watched_labels() == ["{Phone}"]
        assert [key.holds for key in recovered.monitor._watched] == live_holds
        # the recovered monitor keeps reporting transitions
        recovered.apply_delete_batch([3])
        assert any(
            event.kind is EventKind.KEY_RESTORED
            for event in recovered.monitor.history
        )
        recovered.stop()

    def test_cell_types_survive_snapshot_recovery(self, tmp_path):
        # int 1 and str "1" are distinct values; a snapshot-based
        # recovery (clean stop -> no replay) must preserve that
        relation = Relation.from_rows(
            Schema(["A", "B", "C"]), [("a", "b", "c")]
        )
        service = make_service(tmp_path).start(initial=relation)
        service.apply_insert_batch([(1, "1", None), (2.5, True, ("x", 3))])
        live_items = list(service.profiler.relation.iter_items())
        live = service.profiler.snapshot()
        service.stop()

        recovered = make_service(tmp_path).start()
        assert recovered.last_recovery.replayed_records == 0
        assert list(recovered.profiler.relation.iter_items()) == live_items
        profile = recovered.profiler.snapshot()
        assert sorted(profile.mucs) == sorted(live.mucs)
        assert sorted(profile.mnucs) == sorted(live.mnucs)
        recovered.stop()

    def test_periodic_snapshots_bound_replay(self, tmp_path):
        service = make_service(tmp_path, snapshot_every=2).start(
            initial=fresh_relation()
        )
        for i in range(5):
            service.apply_insert_batch([(f"N{i}", f"p{i}", str(i))])
        del service
        recovered = make_service(tmp_path, snapshot_every=2).start()
        assert recovered.last_recovery.snapshot_seq == 4
        assert recovered.last_recovery.replayed_records == 1
        recovered.stop()


class TestSpoolSource:
    def test_drain_applies_and_acks(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "001.json", {"kind": "insert", "rows": [["Ada", "111", "9"]]}
        )
        SpoolDirectorySource.write_batch(
            spool, "002.json", {"kind": "delete", "ids": [0]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        applied = service.serve(SpoolDirectorySource(spool))
        assert applied == 2
        assert sorted(os.listdir(os.path.join(spool, "done"))) == [
            "001.json",
            "002.json",
        ]
        assert len(service.profiler.relation) == 3
        service.stop()

    def test_coalescing_merges_small_insert_batches(self, tmp_path):
        spool = str(tmp_path / "spool")
        for i in range(4):
            SpoolDirectorySource.write_batch(
                spool,
                f"{i:03d}.json",
                {"kind": "insert", "rows": [[f"N{i}", f"p{i}", str(i)]]},
            )
        service = make_service(tmp_path, coalesce_rows=100).start(
            initial=fresh_relation()
        )
        applied = service.serve(SpoolDirectorySource(spool))
        assert applied == 1  # four files, one committed record
        assert service.metrics.counter("batches_coalesced").value == 3
        assert len(service.profiler.relation) == 7
        # every source file still acked
        assert len(os.listdir(os.path.join(spool, "done"))) == 4
        service.stop()

    def test_coalescing_respects_kind_boundary(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "001.json", {"kind": "insert", "rows": [["Ada", "111", "9"]]}
        )
        SpoolDirectorySource.write_batch(
            spool, "002.json", {"kind": "delete", "ids": [0]}
        )
        SpoolDirectorySource.write_batch(
            spool, "003.json", {"kind": "insert", "rows": [["Bob", "222", "8"]]}
        )
        service = make_service(tmp_path, coalesce_rows=100).start(
            initial=fresh_relation()
        )
        assert service.serve(SpoolDirectorySource(spool)) == 3
        service.stop()

    def test_redelivered_batch_skipped(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "001.json", {"kind": "delete", "ids": [0]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        assert service.serve(SpoolDirectorySource(spool)) == 1
        del service
        # crash-before-ack simulation: the file reappears in the spool
        os.replace(
            os.path.join(spool, "done", "001.json"),
            os.path.join(spool, "001.json"),
        )
        recovered = make_service(tmp_path).start()
        assert recovered.serve(SpoolDirectorySource(spool)) == 0
        assert recovered.metrics.counter("batches_redelivered").value == 1
        assert not os.path.exists(os.path.join(spool, "001.json"))
        recovered.stop()

    def test_unknown_kind_raises_without_poison_handler(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(spool, "001.json", {"kind": "upsert"})
        with pytest.raises(WorkloadError, match="unknown batch kind"):
            list(SpoolDirectorySource(spool))

    def test_unknown_kind_quarantined_by_serve(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(spool, "001.json", {"kind": "upsert"})
        service = make_service(tmp_path).start(initial=fresh_relation())
        applied = service.serve(SpoolDirectorySource(spool))
        assert applied == 0
        assert service.dead_letters.count() == 1
        assert not os.path.exists(os.path.join(spool, "001.json"))
        [record] = service.dead_letters.entries()
        assert "unknown batch kind" in record["reason"]
        service.stop()


class TestStdinSource:
    def test_rows_and_delete_directives(self, tmp_path):
        stream = io.StringIO("Ada,111,9\nBob,222,8\n!delete,0\nCal,333,7\n")
        source = StdinCSVSource(stream, n_columns=3, batch_size=10)
        batches = list(source)
        assert [b.kind for b in batches] == ["insert", "delete", "insert"]
        assert batches[0].n_rows == 2
        assert batches[1].tuple_ids == (0,)

    def test_malformed_rows_skipped(self, tmp_path):
        stream = io.StringIO("Ada,111\nBob,222,8\n")
        source = StdinCSVSource(stream, n_columns=3)
        batches = list(source)
        assert len(batches) == 1 and batches[0].n_rows == 1
        assert source.skipped_rows == 1

    def test_batch_size_chunks(self, tmp_path):
        stream = io.StringIO("".join(f"N{i},p{i},{i}\n" for i in range(5)))
        batches = list(StdinCSVSource(stream, n_columns=3, batch_size=2))
        assert [b.n_rows for b in batches] == [2, 2, 1]

    def test_bad_delete_directive_raises_workload_error(self, tmp_path):
        stream = io.StringIO("!delete,xyz\n")
        with pytest.raises(WorkloadError, match="!delete"):
            list(StdinCSVSource(stream, n_columns=3))

    def test_served_end_to_end(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        stream = io.StringIO("Ada,111,9\n!delete,1\n")
        assert service.serve(StdinCSVSource(stream, 3, batch_size=10)) == 2
        assert len(service.profiler.relation) == 3
        service.stop()


class TestObservability:
    def test_stats_and_status_file(self, tmp_path):
        service = make_service(tmp_path, status_every=1).start(
            initial=fresh_relation()
        )
        service.apply_insert_batch([("Ada", "111", "9")])
        stats = service.stats()
        assert stats["counters"]["batches_applied"] == 1
        assert stats["counters"]["rows_inserted"] == 1
        assert stats["gauges"]["live_rows"] == 4
        assert stats["last_seq"] == 1
        status = json.load(
            open(os.path.join(service.data_dir, "status.json"))
        )
        assert status["counters"]["batches_applied"] == 1
        assert status["histograms"]["fsync_seconds"]["count"] == 1
        service.stop()

    def test_event_sink_called(self, tmp_path):
        seen = []
        service = make_service(tmp_path, watches=(("Phone",),)).start(
            initial=fresh_relation()
        )
        service.on_event(seen.append)
        service.apply_insert_batch([("Payne", "245", "31")])
        assert any(event.kind is EventKind.KEY_BROKEN for event in seen)
        service.stop()

    def test_muc_churn_counted(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.apply_insert_batch([("Payne", "245", "31")])
        assert service.metrics.counter("muc_churn").value > 0
        service.stop()

    def test_retrieval_and_encoding_gauges_published(self, tmp_path):
        service = make_service(tmp_path, status_every=1).start(
            initial=fresh_relation()
        )
        service.apply_insert_batch([("Lee", "345", "21"), ("Ada", "111", "9")])
        stats = service.stats()
        for key in (
            "storage_rows",
            "tombstone_rows",
            "encoding_distinct_values",
            "encoding_code_bytes",
            "retrieval_requested",
            "retrieval_random_seeks",
            "retrieval_tuples_scanned",
        ):
            assert key in stats["gauges"], key
        assert stats["gauges"]["storage_rows"] == 5
        assert stats["gauges"]["encoding_distinct_values"] > 0
        assert stats["gauges"]["encoding_code_bytes"] > 0
        assert stats["encoding"]["columns"] == 3
        assert stats["encoding"]["encoded_cells"] == 15
        status = json.load(
            open(os.path.join(service.data_dir, "status.json"))
        )
        assert "retrieval_requested" in status["gauges"]
        assert status["encoding"]["columns"] == 3
        service.stop()

    def test_cache_and_pool_gauges_published(self, tmp_path):
        service = make_service(
            tmp_path, parallelism=2, status_every=1
        ).start(initial=fresh_relation())
        service.apply_delete_batch([2])
        stats = service.stats()
        for key in (
            "pli_cache_hits",
            "pli_cache_misses",
            "pli_cache_evictions",
            "pli_cache_entries",
            "pli_cache_bytes",
            "pool_workers",
            "pool_tasks",
            "pool_utilization",
        ):
            assert key in stats["gauges"], key
        assert stats["gauges"]["pool_workers"] == 2
        assert stats["gauges"]["pli_cache_entries"] > 0
        status = json.load(
            open(os.path.join(service.data_dir, "status.json"))
        )
        assert "pli_cache_entries" in status["gauges"]
        service.stop()

    def test_lock_diagnostic_lands_in_state_dir(self, tmp_path):
        from repro.service.server import LOCK_ERR_NAME

        service = make_service(tmp_path).start(initial=fresh_relation())
        cwd_before = set(os.listdir(os.getcwd()))
        with pytest.raises(ProfileStateError, match="locked by another"):
            make_service(tmp_path).start()
        diagnostic = os.path.join(service.data_dir, LOCK_ERR_NAME)
        assert os.path.exists(diagnostic)
        assert "locked by another" in open(diagnostic).read()
        # Regression: the diagnostic used to be written to the CWD
        # (and once got committed to the repo root).
        assert set(os.listdir(os.getcwd())) == cwd_before
        service.stop()


class TestBatchValidation:
    def test_unknown_kind_not_logged(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        with pytest.raises(WorkloadError):
            service.apply_batch(Batch("upsert"))
        # the bad batch must not have consumed a sequence number
        assert service.stats()["last_seq"] == 0
        service.stop()

    def test_wrong_arity_insert_rejected_before_logging(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        with pytest.raises(WorkloadError, match="values"):
            service.apply_insert_batch([("only", "two")])
        assert service.stats()["last_seq"] == 0
        service.stop()
        # no poison record was committed: the directory stays recoverable
        recovered = make_service(tmp_path).start()
        assert len(recovered.profiler.relation) == 3
        recovered.stop()

    def test_bad_delete_ids_rejected_before_logging(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.apply_delete_batch([0])
        for bad in ([0], [99], [-1], [1, 1]):
            with pytest.raises(WorkloadError):
                service.apply_delete_batch(bad)
        assert service.stats()["last_seq"] == 1
        service.stop()
        recovered = make_service(tmp_path).start()  # replays cleanly
        assert len(recovered.profiler.relation) == 2
        recovered.stop()

    def test_unloggable_cell_rejected(self, tmp_path):
        service = make_service(tmp_path).start(initial=fresh_relation())
        with pytest.raises(WorkloadError, match="round-trip"):
            service.apply_insert_batch([("Ada", "111", {"not": "scalar"})])
        assert service.stats()["last_seq"] == 0
        service.stop()

    def test_poison_spool_batch_commits_nothing(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "001.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        applied = service.serve(SpoolDirectorySource(spool))
        assert applied == 0
        assert service.stats()["last_seq"] == 0
        # the poison file moved to quarantine with a reason record
        assert not os.path.exists(os.path.join(spool, "001.json"))
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert record["tokens"] == ["001.json"]
        assert "3 columns" in record["reason"]
        service.stop()
        make_service(tmp_path).start().stop()  # restart recovers fine

    def test_spool_batch_missing_payload_key_rejected(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(spool, "001.json", {"kind": "insert"})
        with pytest.raises(WorkloadError, match="not a valid batch"):
            list(SpoolDirectorySource(spool))
