"""Unit tests for the observability layer."""

import json
import os

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_histogram_summary(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5050.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert 45 <= summary["p50"] <= 55
        assert 90 <= summary["p95"] <= 100
        assert summary["p99"] >= summary["p95"] >= summary["p50"]

    def test_histogram_empty(self):
        assert Histogram().summary() == {"count": 0}
        assert Histogram().percentile(50) == 0.0

    def test_histogram_reservoir_stays_bounded(self):
        hist = Histogram()
        for value in range(20_000):
            hist.observe(float(value))
        assert hist.count == 20_000
        assert len(hist._samples) < 5000
        # exact aggregates survive decimation
        assert hist.min == 0.0 and hist.max == 19_999.0
        assert hist.percentile(50) == pytest.approx(10_000, rel=0.15)


class TestRegistry:
    def test_named_metrics_are_singletons(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2

    def test_time_context(self):
        registry = MetricsRegistry()
        with registry.time("op_seconds"):
            pass
        assert registry.histogram("op_seconds").count == 1

    def test_time_context_records_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time("op_seconds"):
                raise RuntimeError("boom")
        assert registry.histogram("op_seconds").count == 1

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("batches").inc()
        registry.gauge("rows").set(10)
        registry.histogram("lat").observe(0.5)
        doc = registry.to_dict()
        assert doc["counters"] == {"batches": 1.0}
        assert doc["gauges"] == {"rows": 10}
        assert doc["histograms"]["lat"]["count"] == 1

    def test_write_status_atomic_and_valid(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("batches").inc(3)
        path = str(tmp_path / "status.json")
        registry.write_status(path, extra={"service": "swan"})
        assert not os.path.exists(path + ".tmp")
        doc = json.load(open(path))
        assert doc["service"] == "swan"
        assert doc["counters"]["batches"] == 3
        assert "updated_unix" in doc
