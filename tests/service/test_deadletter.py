"""Dead-letter quarantine: unit behavior and the end-to-end poison path."""

import json
import os

import pytest

from repro.service.deadletter import DeadLetterQueue
from repro.service.health import HealthState
from repro.service.server import (
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def fresh_relation():
    return Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)


def make_service(tmp_path, **overrides):
    # coalesce_rows=1 keeps batch boundaries visible to assertions;
    # TestCoalescedPoison exercises the merging path explicitly.
    defaults = dict(algorithm="bruteforce", snapshot_every=0, coalesce_rows=1)
    defaults.update(overrides)
    return ProfilingService(
        str(tmp_path / "state"), config=ServiceConfig(**defaults)
    )


class TestDeadLetterQueue:
    def test_quarantine_file_moves_and_writes_reason(self, tmp_path):
        queue = DeadLetterQueue(str(tmp_path / "dl"))
        victim = tmp_path / "bad.json"
        victim.write_text("garbage")
        destination = queue.quarantine_file(
            str(victim), reason="unparseable", tokens=("bad.json",),
            error=ValueError("nope"),
        )
        assert not victim.exists()
        assert os.path.exists(destination)
        [record] = queue.entries()
        assert record["reason"] == "unparseable"
        assert record["error_type"] == "ValueError"
        assert record["tokens"] == ["bad.json"]
        assert record["quarantined_unix"] > 0
        assert queue.count() == 1
        assert queue.tokens() == frozenset({"bad.json"})

    def test_name_collisions_get_unique_suffixes(self, tmp_path):
        queue = DeadLetterQueue(str(tmp_path / "dl"))
        for _ in range(3):
            victim = tmp_path / "bad.json"
            victim.write_text("garbage")
            queue.quarantine_file(str(victim), reason="again")
        assert queue.count() == 3
        names = sorted(r["name"] for r in queue.entries())
        assert names == ["bad.1.json", "bad.2.json", "bad.json"]

    def test_quarantine_payload_serializes_batch(self, tmp_path):
        queue = DeadLetterQueue(str(tmp_path / "dl"))
        destination = queue.quarantine_payload(
            {"kind": "insert", "rows": [["x"]]}, reason="bad arity",
            tokens=("t1", "t2"),
        )
        with open(destination) as handle:
            assert json.load(handle)["kind"] == "insert"
        assert queue.tokens() == frozenset({"t1", "t2"})

    def test_quarantine_state_moves_whole_trees(self, tmp_path):
        queue = DeadLetterQueue(str(tmp_path / "dl"))
        wal = tmp_path / "changelog.wal"
        wal.write_bytes(b"WALDATA")
        snaps = tmp_path / "snapshots"
        snaps.mkdir()
        (snaps / "snap-1").mkdir()
        destination = queue.quarantine_state(
            [str(wal), str(snaps), str(tmp_path / "missing")],
            reason="sentinel divergence",
            label="state-seq7",
        )
        assert not wal.exists()
        assert not snaps.exists()
        assert os.path.exists(os.path.join(destination, "changelog.wal"))
        assert os.path.exists(os.path.join(destination, "snapshots", "snap-1"))
        [record] = queue.entries()
        assert record["name"] == "state-seq7"

    def test_empty_queue(self, tmp_path):
        queue = DeadLetterQueue(str(tmp_path / "never-created"))
        assert queue.count() == 0
        assert queue.entries() == []
        assert queue.tokens() == frozenset()
        assert not os.path.exists(queue.directory)  # lazy mkdir


class TestPoisonBatchEndToEnd:
    """ISSUE satellite: poison batch -> quarantine, continue, no-op redelivery."""

    def test_poison_is_quarantined_and_loop_continues(self, tmp_path):
        spool = str(tmp_path / "spool")
        # b1 applies; b2 is poison (bad arity); b3 must still apply.
        SpoolDirectorySource.write_batch(
            spool, "b1.json",
            {"kind": "insert", "rows": [["Ada", "111", "9"]]},
        )
        SpoolDirectorySource.write_batch(
            spool, "b2.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        SpoolDirectorySource.write_batch(
            spool, "b3.json",
            {"kind": "insert", "rows": [["Bob", "222", "8"]]},
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        applied = service.serve(SpoolDirectorySource(spool))

        # The two good batches applied despite the poison between them.
        assert applied == 2
        assert len(service.profiler.relation) == 5

        # The poison file moved to quarantine with a reason record.
        assert not os.path.exists(os.path.join(spool, "b2.json"))
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert record["tokens"] == ["b2.json"]
        assert "3 columns" in record["reason"]
        assert record["error_type"] == "WorkloadError"

        # Quarantining degrades health (and says why) without stopping.
        assert service.health.state is HealthState.DEGRADED
        assert "quarantined" in service.health.last_error
        assert service.stats()["dead_letters"] == 1
        service.stop()

    def test_redelivery_of_quarantined_token_is_a_noop(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "bad.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        assert service.serve(SpoolDirectorySource(spool)) == 0
        assert service.dead_letters.count() == 1

        # A producer redelivers the same token: acked as a no-op, not
        # quarantined twice, not applied.
        SpoolDirectorySource.write_batch(
            spool, "bad.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        assert service.serve(SpoolDirectorySource(spool)) == 0
        assert service.dead_letters.count() == 1
        assert len(service.profiler.relation) == 3
        assert (
            service.metrics.counter("deadletter_redelivered").value == 1
        )
        # The redelivered file was acked (archived), not left pending.
        assert not os.path.exists(os.path.join(spool, "bad.json"))
        service.stop()

    def test_quarantined_tokens_survive_restart(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "bad.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        service.serve(SpoolDirectorySource(spool))
        service.stop()

        # A fresh process reloads quarantined tokens from the reason
        # records, so redelivery is still a no-op after restart.
        service = make_service(tmp_path).start()
        SpoolDirectorySource.write_batch(
            spool, "bad.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        assert service.serve(SpoolDirectorySource(spool)) == 0
        assert service.dead_letters.count() == 1
        assert len(service.profiler.relation) == 3
        service.stop()

    def test_unparseable_spool_file_quarantined_via_source_hook(
        self, tmp_path
    ):
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        with open(os.path.join(spool, "junk.json"), "w") as handle:
            handle.write("{not json")
        SpoolDirectorySource.write_batch(
            spool, "ok.json", {"kind": "insert", "rows": [["Ada", "111", "9"]]}
        )
        service = make_service(tmp_path).start(initial=fresh_relation())
        source = SpoolDirectorySource(spool)
        assert service.serve(source) == 1
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert "not a valid batch" in record["reason"]
        # serve() restored the source's poison hook on exit.
        assert source.on_poison is None
        service.stop()

    def test_pipe_source_poison_payload_is_serialized(self, tmp_path):
        # A source without path_for (stdin-shaped) still keeps evidence:
        # the batch payload itself lands in the dead-letter directory.
        from repro.service.server import Batch

        class ListSource:
            def __init__(self, batches):
                self._batches = batches

            def __iter__(self):
                return iter(self._batches)

            def has_ready(self):
                return False

            def ack(self, batch):
                return

        service = make_service(tmp_path).start(initial=fresh_relation())
        poison = Batch("insert", rows=(("too", "few"),))
        assert service.serve(ListSource([poison])) == 0
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert record["name"] == "batch.json"
        path = os.path.join(service.dead_letters.directory, "batch.json")
        with open(path) as handle:
            assert json.load(handle)["rows"] == [["too", "few"]]
        service.stop()


class TestCoalescedPoison:
    def test_poison_between_coalescible_batches_is_cut_out(self, tmp_path):
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "b1.json",
            {"kind": "insert", "rows": [["Ada", "111", "9"]]},
        )
        SpoolDirectorySource.write_batch(
            spool, "b2.json", {"kind": "insert", "rows": [["too", "few"]]}
        )
        SpoolDirectorySource.write_batch(
            spool, "b3.json",
            {"kind": "insert", "rows": [["Bob", "222", "8"]]},
        )
        # Default coalescing on: b1 and b3 merge into one commit, while
        # the poison b2 between them is quarantined alone instead of
        # taking the whole merged batch down.
        service = make_service(tmp_path, coalesce_rows=500).start(
            initial=fresh_relation()
        )
        applied = service.serve(SpoolDirectorySource(spool))
        assert applied == 1
        assert len(service.profiler.relation) == 5
        assert service.dead_letters.count() == 1
        [record] = service.dead_letters.entries()
        assert record["tokens"] == ["b2.json"]
        # Both good files were acked; only the poison one moved.
        assert sorted(os.listdir(os.path.join(spool, "done"))) == [
            "b1.json", "b3.json",
        ]
        service.stop()


class TestHealthGate:
    def test_read_only_service_refuses_batches(self, tmp_path):
        from repro.errors import ServiceHealthError

        service = make_service(tmp_path).start(initial=fresh_relation())
        service.health.mark_read_only("simulated append exhaustion")
        with pytest.raises(ServiceHealthError, match="read_only"):
            service.apply_insert_batch([("Ada", "111", "9")])
        # serve() stops immediately instead of looping.
        spool = str(tmp_path / "spool")
        SpoolDirectorySource.write_batch(
            spool, "b1.json", {"kind": "insert", "rows": [["Bob", "222", "8"]]}
        )
        assert service.serve(SpoolDirectorySource(spool)) == 0
        # The batch was not consumed: it survives for after the restart.
        assert os.path.exists(os.path.join(spool, "b1.json"))
        service.stop()
