"""Storage compaction: tuple IDs and the profile survive, gauges tell.

Satellite of the encoded-columnar-core change: tombstoned storage is
reclaimed in place (``Relation.compact_in_place`` via
``SwanProfiler.compact_storage``), and the service loop triggers it
automatically when the live fraction drops below the configured
threshold. Everything derived is keyed by tuple ID or dictionary code,
so nothing needs rebuilding -- these tests pin that down.
"""

import pytest

from repro.core.swan import SwanProfiler
from repro.profiling.verify import verify_profile
from repro.service.server import ProfilingService, ServiceConfig
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
    ("Grant", "999", "30"),
    ("Grant", "345", "20"),
    ("Quinn", "245", "31"),
]


def fresh_relation():
    return Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)


class TestProfilerCompaction:
    def test_profile_and_ids_survive(self):
        profiler = SwanProfiler.profile(fresh_relation(), algorithm="bruteforce")
        try:
            profiler.handle_deletes([1, 3, 5])
            before = profiler.snapshot()
            survivors = {
                tuple_id: profiler.relation.row(tuple_id)
                for tuple_id in profiler.relation.iter_ids()
            }
            reclaimed = profiler.compact_storage()
            assert reclaimed == 3
            assert profiler.relation.tombstone_count == 0
            # Every surviving tuple keeps its ID and its row.
            assert {
                tuple_id: profiler.relation.row(tuple_id)
                for tuple_id in profiler.relation.iter_ids()
            } == survivors
            # The profile is untouched, bit for bit, and still correct.
            after = profiler.snapshot()
            assert after.mucs == before.mucs
            assert after.mnucs == before.mnucs
            verify_profile(
                profiler.relation, list(after.mucs), list(after.mnucs)
            )
        finally:
            profiler.close()

    def test_batches_after_compaction_stay_correct(self):
        profiler = SwanProfiler.profile(fresh_relation(), algorithm="bruteforce")
        try:
            profiler.handle_deletes([0, 2])
            profiler.compact_storage()
            # IDs keep ascending from the pre-compaction high-water mark.
            first_new = profiler.relation.next_tuple_id
            assert first_new == len(ROWS)
            profile = profiler.handle_inserts(
                [("Lee", "345", "20"), ("New", "000", "1")]
            )
            assert profiler.relation.is_live(first_new)
            verify_profile(
                profiler.relation, list(profile.mucs), list(profile.mnucs)
            )
            profile = profiler.handle_deletes([first_new])
            verify_profile(
                profiler.relation, list(profile.mucs), list(profile.mnucs)
            )
        finally:
            profiler.close()

    def test_compacting_clean_storage_is_a_no_op(self):
        profiler = SwanProfiler.profile(fresh_relation(), algorithm="bruteforce")
        try:
            assert profiler.compact_storage() == 0
        finally:
            profiler.close()


def make_service(tmp_path, **overrides):
    defaults = dict(algorithm="bruteforce", snapshot_every=0)
    defaults.update(overrides)
    return ProfilingService(
        str(tmp_path / "state"), config=ServiceConfig(**defaults)
    )


class TestServiceCompaction:
    def test_live_fraction_threshold_triggers(self, tmp_path):
        service = make_service(
            tmp_path, compact_min_rows=1, compact_live_fraction=0.5
        ).start(initial=fresh_relation())
        service.apply_delete_batch([0, 1, 2, 3])
        assert service.metrics.counter("compactions").value == 1
        assert service.metrics.counter("tombstones_reclaimed").value == 4
        relation = service.profiler.relation
        assert relation.tombstone_count == 0
        assert sorted(relation.iter_ids()) == [4, 5]
        stats = service.stats()
        assert stats["gauges"]["storage_rows"] == 2
        assert stats["gauges"]["tombstone_rows"] == 0
        profile = service.profiler.snapshot()
        verify_profile(relation, list(profile.mucs), list(profile.mnucs))
        service.stop()

    def test_above_threshold_keeps_tombstones(self, tmp_path):
        service = make_service(
            tmp_path, compact_min_rows=1, compact_live_fraction=0.5
        ).start(initial=fresh_relation())
        service.apply_delete_batch([0])
        assert service.metrics.counter("compactions").value == 0
        assert service.profiler.relation.tombstone_count == 1
        service.stop()

    def test_min_rows_floor_and_disable_knob(self, tmp_path):
        service = make_service(
            tmp_path, compact_min_rows=1024, compact_live_fraction=0.5
        ).start(initial=fresh_relation())
        service.apply_delete_batch([0, 1, 2, 3])
        assert service.metrics.counter("compactions").value == 0
        service.stop()
        disabled = make_service(
            tmp_path / "b", compact_min_rows=1, compact_live_fraction=0.0
        ).start(initial=fresh_relation())
        disabled.apply_delete_batch([0, 1, 2, 3])
        assert disabled.metrics.counter("compactions").value == 0
        disabled.stop()

    def test_service_survives_batches_after_compaction(self, tmp_path):
        service = make_service(
            tmp_path, compact_min_rows=1, compact_live_fraction=0.5
        ).start(initial=fresh_relation())
        service.apply_delete_batch([0, 1, 2, 3])
        assert service.metrics.counter("compactions").value == 1
        profile = service.apply_insert_batch(
            [("Quinn", "245", "31"), ("Solo", "777", "40")]
        )
        relation = service.profiler.relation
        verify_profile(relation, list(profile.mucs), list(profile.mnucs))
        assert relation.is_live(len(ROWS))  # fresh IDs continue past the max
        service.stop()
