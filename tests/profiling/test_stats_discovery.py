"""Unit tests for column statistics and the discovery registry."""

import pytest

from repro.errors import AlgorithmError
from repro.profiling.discovery import available_algorithms, discover
from repro.profiling.stats import column_statistics, muc_column_frequencies
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(["a", "b"])
    return Relation.from_rows(
        schema, [("1", "x"), ("2", "x"), ("3", "y"), ("4", "y")]
    )


class TestColumnStatistics:
    def test_cardinalities(self, relation):
        stats = column_statistics(relation)
        assert stats.row_count == 4
        assert stats.cardinalities == (4, 2)

    def test_selectivity(self, relation):
        stats = column_statistics(relation)
        assert stats.selectivity(0) == 1.0
        assert stats.selectivity(1) == 0.5

    def test_restricted_columns(self, relation):
        stats = column_statistics(relation, columns=[1])
        assert stats.cardinalities == (0, 2)

    def test_frequency_order(self, relation):
        stats = column_statistics(relation)
        assert stats.frequency_order() == [0, 1]

    def test_empty_relation(self):
        relation = Relation(Schema(["a"]))
        stats = column_statistics(relation)
        assert stats.selectivity(0) == 0.0


class TestMucColumnFrequencies:
    def test_counts(self):
        assert muc_column_frequencies([0b011, 0b010], 3) == [1, 2, 0]

    def test_empty(self):
        assert muc_column_frequencies([], 2) == [0, 0]


class TestDiscoveryRegistry:
    def test_available(self):
        assert set(available_algorithms()) >= {"bruteforce", "ducc", "gordian", "hca"}

    def test_unknown_algorithm(self, relation):
        with pytest.raises(AlgorithmError):
            discover(relation, "nope")

    def test_canonical_order(self, relation):
        mucs, mnucs = discover(relation, "bruteforce")
        assert mucs == sorted(mucs, key=lambda m: (bin(m).count("1"), m))
        assert mnucs == sorted(mnucs, key=lambda m: (bin(m).count("1"), m))
