"""Unit tests for the combined profiling summary."""

import json

import pytest

from repro.profiling.summary import summarize
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(["id", "code", "label", "flag"])
    return Relation.from_rows(
        schema,
        [
            ("1", "a", "alpha", "y"),
            ("2", "a", "alpha", "y"),
            ("3", "b", "beta", "y"),
            ("4", "b", "beta", "n"),
        ],
    )


class TestSummarize:
    def test_basic_profile(self, relation):
        summary = summarize(relation, algorithm="bruteforce")
        assert summary.n_rows == 4
        assert ("id",) in summary.candidate_keys()
        assert summary.stats.cardinalities[0] == 4

    def test_key_like_columns(self, relation):
        summary = summarize(relation, algorithm="bruteforce")
        assert summary.key_like_columns() == ["id"]
        assert "code" in summary.key_like_columns(threshold=0.5)

    def test_candidate_keys_size_filter(self, relation):
        summary = summarize(relation, algorithm="bruteforce")
        singles = summary.candidate_keys(max_size=1)
        assert singles == [("id",)]

    def test_with_fds(self, relation):
        summary = summarize(relation, algorithm="bruteforce", with_fds=1)
        rendered = [fd.named(relation.schema) for fd in summary.fds]
        assert "[code] -> label" in rendered

    def test_with_inds(self):
        schema = Schema(["narrow", "wide"])
        rel = Relation.from_rows(
            schema, [("a", "a"), ("a", "b"), ("b", "c")]
        )
        summary = summarize(rel, algorithm="bruteforce", with_inds=True)
        rendered = [ind.named(schema) for ind in summary.inds]
        assert "R.narrow ⊆ R.wide" in rendered

    def test_to_dict_is_json_ready(self, relation):
        summary = summarize(
            relation, algorithm="bruteforce", with_fds=1, with_inds=True
        )
        payload = json.dumps(summary.to_dict())
        decoded = json.loads(payload)
        assert decoded["rows"] == 4
        assert ["id"] in decoded["minimal_uniques"]
        assert decoded["columns"][0]["name"] == "id"

    def test_render_sections(self, relation):
        summary = summarize(
            relation, algorithm="bruteforce", with_fds=1, with_inds=True
        )
        text = summary.render()
        assert "candidate keys" in text
        assert "functional dependencies" in text
        assert "{id}" in text

    def test_render_truncation(self):
        schema = Schema(["a", "b", "c"])
        rel = Relation.from_rows(
            schema,
            [("1", "x", "p"), ("2", "y", "p"), ("3", "x", "q"), ("3", "y", "r")],
        )
        summary = summarize(rel, algorithm="bruteforce")
        assert len(summary.mucs) > 1
        text = summary.render(max_items=1)
        assert "more" in text
