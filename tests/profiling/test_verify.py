"""Unit tests for uniqueness verification and agree sets."""

import pytest

from repro.errors import InconsistentProfileError
from repro.profiling.verify import (
    agree_set,
    is_maximal_non_unique,
    is_minimal_unique,
    is_non_unique,
    is_unique,
    pairwise_agree_sets,
    sort_profile,
    verify_profile,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(["a", "b", "c"])
    return Relation.from_rows(
        schema,
        [("x", "1", "p"), ("y", "1", "q"), ("x", "2", "q")],
    )


class TestUniquenessChecks:
    def test_is_unique(self, relation):
        assert is_unique(relation, 0b011)  # (a,b) pairs distinct
        assert not is_unique(relation, 0b001)
        assert is_non_unique(relation, 0b010)

    def test_empty_combination(self, relation):
        assert not is_unique(relation, 0)

    def test_is_minimal_unique(self, relation):
        assert is_minimal_unique(relation, 0b011)
        assert not is_minimal_unique(relation, 0b111)  # not minimal
        assert not is_minimal_unique(relation, 0b001)  # not unique

    def test_is_maximal_non_unique(self, relation):
        assert is_maximal_non_unique(relation, 0b001)
        assert not is_maximal_non_unique(relation, 0b011)


class TestAgreeSets:
    def test_agree_set(self):
        assert agree_set(("x", "1", "p"), ("x", "2", "p")) == 0b101
        assert agree_set(("a", "b"), ("c", "d")) == 0
        assert agree_set(("a",), ("a",)) == 0b1

    def test_pairwise(self):
        rows = [("x", "1"), ("x", "2"), ("y", "1")]
        assert pairwise_agree_sets(rows) == {0b01, 0b10, 0b00}


class TestVerifyProfile:
    def test_accepts_correct_profile(self, relation):
        verify_profile(relation, [0b011, 0b101, 0b110], [0b001, 0b010, 0b100],
                       exhaustive=True)

    def test_rejects_bogus_muc(self, relation):
        with pytest.raises(InconsistentProfileError, match="MUC"):
            verify_profile(relation, [0b001], [])

    def test_rejects_bogus_mnuc(self, relation):
        with pytest.raises(InconsistentProfileError, match="MNUC"):
            verify_profile(relation, [], [0b011])

    def test_exhaustive_catches_missing_mnucs(self, relation):
        with pytest.raises(InconsistentProfileError, match="duals"):
            verify_profile(
                relation, [0b011, 0b101, 0b110], [0b001], exhaustive=True
            )

    def test_non_exhaustive_tolerates_missing(self, relation):
        verify_profile(relation, [0b011], [0b001])


def test_sort_profile_dedupes_and_orders():
    assert sort_profile([0b100, 0b011, 0b100, 0b1]) == [0b001, 0b100, 0b011]
