"""Unit tests for profile diffs."""

from repro.core.repository import Profile
from repro.core.swan import SwanProfiler
from repro.profiling.diff import diff_profiles
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class TestDiffProfiles:
    def test_unchanged(self):
        profile = Profile.from_masks([0b01], [0b10])
        diff = diff_profiles(profile, profile)
        assert diff.unchanged
        assert diff.render(Schema(["a", "b"])) == "profile unchanged"

    def test_weakened_key(self):
        before = Profile.from_masks([0b010], [0b101])
        after = Profile.from_masks([0b110], [0b101])
        diff = diff_profiles(before, after)
        assert diff.weakened == ((0b010, 0b110),)
        assert diff.strengthened == ()
        text = diff.render(Schema(["a", "b", "c"]))
        assert "key weakened: {b} -> {b, c}" in text

    def test_strengthened_key(self):
        before = Profile.from_masks([0b011], [])
        after = Profile.from_masks([0b001], [])
        diff = diff_profiles(before, after)
        assert diff.strengthened == ((0b011, 0b001),)
        assert "key strengthened" in diff.render(Schema(["a", "b"]))

    def test_unrelated_gain_and_loss(self):
        before = Profile.from_masks([0b001], [])
        after = Profile.from_masks([0b010], [])
        diff = diff_profiles(before, after)
        assert diff.weakened == () and diff.strengthened == ()
        text = diff.render(Schema(["a", "b"]))
        assert "new key: {b}" in text
        assert "lost key: {a}" in text

    def test_mnuc_tracking(self):
        before = Profile.from_masks([0b100], [0b011])
        after = Profile.from_masks([0b100], [0b001, 0b010])
        diff = diff_profiles(before, after)
        assert diff.lost_mnucs == (0b011,)
        assert diff.gained_mnucs == (0b001, 0b010)


class TestWithSwan:
    def test_paper_example_diff(self):
        schema = Schema(["Name", "Phone", "Age"])
        relation = Relation.from_rows(
            schema,
            [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
        )
        profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
        before = profiler.snapshot()
        after = profiler.handle_inserts([("Payne", "245", "31")])
        diff = diff_profiles(before, after)
        # {Phone} weakened to {Phone, Age}
        assert diff.weakened == ((0b010, 0b110),)
        text = diff.render(schema)
        assert "key weakened: {Phone} -> {Phone, Age}" in text
