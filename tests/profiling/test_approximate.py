"""Unit and oracle tests for approximate unique discovery."""

import random
from itertools import combinations

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.lattice.combination import columns_of, is_subset
from repro.profiling.approximate import (
    ApproximateUniqueFinder,
    discover_approximate_uniques,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from tests.conftest import random_relation


def brute_degree(relation: Relation, mask: int) -> int:
    """Oracle: rows to remove = sum over duplicate groups of size-1."""
    groups: dict[tuple, int] = {}
    indices = columns_of(mask)
    for row in relation.iter_rows():
        key = tuple(row[index] for index in indices)
        groups[key] = groups.get(key, 0) + 1
    return sum(count - 1 for count in groups.values())


def brute_border(relation: Relation, budget: int) -> tuple[list[int], list[int]]:
    n_columns = relation.n_columns
    status = {
        mask: brute_degree(relation, mask) <= budget
        for mask in range(1 << n_columns)
    }
    minimal = [
        mask
        for mask, good in status.items()
        if good
        and all(
            not status[mask & ~(1 << bit)]
            for bit in range(n_columns)
            if mask >> bit & 1
        )
    ]
    maximal = [
        mask
        for mask, good in status.items()
        if not good
        and all(
            status[mask | (1 << bit)]
            for bit in range(n_columns)
            if not mask >> bit & 1
        )
    ]
    return sorted(minimal), sorted(maximal)


@pytest.fixture
def dirty_key_relation():
    """'id' is unique except for one duplicated legacy row."""
    schema = Schema(["id", "v"])
    return Relation.from_rows(
        schema,
        [("1", "a"), ("2", "b"), ("3", "c"), ("3", "d"), ("4", "e")],
    )


class TestDegree:
    def test_degree_counts_removals(self, dirty_key_relation):
        finder = ApproximateUniqueFinder(dirty_key_relation)
        assert finder.degree(0b01) == 1  # one row to drop
        assert finder.degree(0b10) == 0  # v is unique
        assert finder.degree(0b11) == 0

    def test_degree_empty_mask(self, dirty_key_relation):
        finder = ApproximateUniqueFinder(dirty_key_relation)
        assert finder.degree(0) == 4  # keep one of five rows

    def test_degree_matches_oracle_random(self):
        for seed in range(10):
            relation = random_relation(seed, n_columns=4)
            finder = ApproximateUniqueFinder(relation)
            for mask in range(1, 16):
                assert finder.degree(mask) == brute_degree(relation, mask)


class TestDiscovery:
    def test_dirty_key_found_with_budget(self, dirty_key_relation):
        exact, __ = discover_approximate_uniques(dirty_key_relation, 0)
        relaxed, __ = discover_approximate_uniques(dirty_key_relation, 1)
        assert 0b01 not in exact
        assert 0b01 in relaxed

    def test_budget_zero_equals_exact_discovery(self):
        for seed in range(8):
            relation = random_relation(seed, n_columns=4)
            approx_mucs, approx_mnucs = discover_approximate_uniques(relation, 0)
            exact_mucs, exact_mnucs = discover_bruteforce(relation)
            assert sorted(approx_mucs) == sorted(exact_mucs)
            assert sorted(approx_mnucs) == sorted(exact_mnucs)

    @pytest.mark.parametrize("budget", [1, 2, 4])
    def test_against_bruteforce(self, budget):
        for seed in range(8):
            relation = random_relation(100 + seed, n_columns=4)
            got = discover_approximate_uniques(relation, budget)
            expected = brute_border(relation, budget)
            assert sorted(got[0]) == expected[0], (seed, budget)
            assert sorted(got[1]) == expected[1], (seed, budget)

    def test_budget_monotone(self):
        """A larger budget never loses an approximate unique: every
        k-approx unique contains a (k+1)-approx minimal one."""
        relation = random_relation(3, n_columns=4, n_rows=25, domain=3)
        tight, __ = discover_approximate_uniques(relation, 1)
        loose, __ = discover_approximate_uniques(relation, 3)
        for mask in tight:
            assert any(is_subset(member, mask) for member in loose)

    def test_negative_budget_rejected(self, dirty_key_relation):
        with pytest.raises(ValueError):
            discover_approximate_uniques(dirty_key_relation, -1)

    def test_tiny_relation(self):
        relation = Relation.from_rows(Schema(["a"]), [("x",)])
        assert discover_approximate_uniques(relation, 0) == ([0], [])


class TestBorderHelperIsGeneric:
    def test_arbitrary_monotone_predicate(self):
        """discover_border works for any upward-closed predicate."""
        from repro.lattice.border import discover_border

        # predicate: mask covers at least 3 of 5 columns
        minimal, maximal = discover_border(
            5, lambda mask: bin(mask).count("1") >= 3
        )
        assert all(bin(mask).count("1") == 3 for mask in minimal)
        assert len(minimal) == len(list(combinations(range(5), 3)))
        assert all(bin(mask).count("1") == 2 for mask in maximal)

    def test_seeded_knowledge(self):
        from repro.lattice.border import discover_border

        calls: list[int] = []

        def predicate(mask: int) -> bool:
            calls.append(mask)
            return bin(mask).count("1") >= 2

        minimal, __ = discover_border(
            3,
            predicate,
            known_true=[0b011, 0b101, 0b110],
            known_false=[0b001, 0b010, 0b100],
        )
        assert sorted(minimal) == [0b011, 0b101, 0b110]
        assert calls == []  # fully answered by the seeds

    def test_always_true_predicate(self):
        from repro.lattice.border import discover_border

        minimal, maximal = discover_border(3, lambda mask: True)
        assert minimal == [0]
        assert maximal == []

    def test_always_false_predicate(self):
        from repro.lattice.border import discover_border

        minimal, maximal = discover_border(3, lambda mask: False)
        assert minimal == []
        assert maximal == [0b111]
