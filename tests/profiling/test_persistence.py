"""Unit tests for profile persistence."""

import json

import pytest

from repro.core.repository import Profile
from repro.core.swan import SwanProfiler
from repro.errors import ProfileStateError
from repro.profiling.persistence import dump_profile, load_profile
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def schema():
    return Schema(["Name", "Phone", "Age"])


@pytest.fixture
def profile():
    return Profile.from_masks([0b010, 0b101], [0b001, 0b100])


class TestRoundtrip:
    def test_dump_and_load(self, schema, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        dump_profile(schema, profile, path)
        stored = load_profile(path)
        assert stored.columns == schema.names
        assert stored.profile == profile

    def test_masks_for_same_schema(self, schema, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        dump_profile(schema, profile, path)
        mucs, mnucs = load_profile(path).masks_for(schema)
        assert sorted(mucs) == [0b010, 0b101]
        assert sorted(mnucs) == [0b001, 0b100]

    def test_masks_for_reordered_schema(self, schema, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        dump_profile(schema, profile, path)
        reordered = Schema(["Age", "Name", "Phone"])
        mucs, __ = load_profile(path).masks_for(reordered)
        # {Phone} -> bit 2; {Name, Age} -> bits 1 and 0
        assert sorted(mucs) == [0b011, 0b100]

    def test_missing_column_rejected(self, schema, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        dump_profile(schema, profile, path)
        with pytest.raises(ProfileStateError, match="missing"):
            load_profile(path).masks_for(Schema(["Name", "Phone"]))

    def test_version_check(self, schema, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        dump_profile(schema, profile, path)
        with open(path) as handle:
            payload = json.load(handle)
        payload["format_version"] = 99
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(ProfileStateError, match="version"):
            load_profile(path)


class TestReattach:
    def test_swan_restarts_from_stored_profile(self, tmp_path):
        schema = Schema(["Name", "Phone", "Age"])
        relation = Relation.from_rows(
            schema,
            [("Lee", "345", "20"), ("Payne", "245", "30"), ("Lee", "234", "30")],
        )
        first = SwanProfiler.profile(relation, algorithm="bruteforce")
        path = str(tmp_path / "profile.json")
        dump_profile(schema, first.snapshot(), path)

        mucs, mnucs = load_profile(path).masks_for(schema)
        second = SwanProfiler(relation, mucs, mnucs)
        profile = second.handle_inserts([("Payne", "245", "31")])
        names = {schema.combination(mask).names for mask in profile.mucs}
        assert names == {("Name", "Age"), ("Phone", "Age")}
