"""Property-based tests for minimal hitting sets and the UCC duality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.combination import is_subset
from repro.lattice.enumeration import is_antichain
from repro.lattice.transversal import (
    minimal_hitting_sets,
    mnucs_from_mucs,
    mucs_from_mnucs,
)

N_VERTICES = 7
edges_strategy = st.lists(
    st.integers(min_value=1, max_value=(1 << N_VERTICES) - 1),
    min_size=1,
    max_size=8,
)


@given(edges_strategy)
@settings(max_examples=120)
def test_hitting_sets_hit_everything_and_are_minimal(edges):
    results = minimal_hitting_sets(edges)
    assert is_antichain(results)
    for result in results:
        assert all(result & edge for edge in edges)
        for bit in range(N_VERTICES):
            smaller = result & ~(1 << bit)
            if smaller != result:
                assert not all(smaller & edge for edge in edges)


@given(edges_strategy)
@settings(max_examples=120)
def test_hitting_sets_complete(edges):
    """Every hitting set contains a reported minimal one."""
    results = minimal_hitting_sets(edges)
    for candidate in range(1 << N_VERTICES):
        if all(candidate & edge for edge in edges):
            assert any(is_subset(result, candidate) for result in results)


@st.composite
def antichains(draw):
    raw = draw(
        st.lists(
            st.integers(min_value=1, max_value=(1 << N_VERTICES) - 1),
            min_size=1,
            max_size=8,
        )
    )
    return [
        mask
        for mask in set(raw)
        if not any(other != mask and is_subset(other, mask) for other in raw)
    ]


@given(antichains())
@settings(max_examples=120)
def test_duality_roundtrip(mucs):
    mnucs = mnucs_from_mucs(mucs, N_VERTICES)
    assert is_antichain(mnucs)
    assert sorted(mucs_from_mnucs(mnucs, N_VERTICES)) == sorted(mucs)


@given(antichains())
@settings(max_examples=120)
def test_duality_semantics(mucs):
    """K subset of some MNUC <=> K contains no MUC."""
    mnucs = mnucs_from_mucs(mucs, N_VERTICES)
    for mask in range(1 << N_VERTICES):
        covered = any(is_subset(mask, mnuc) for mnuc in mnucs)
        contains_muc = any(is_subset(muc, mask) for muc in mucs)
        assert covered == (not contains_muc)
