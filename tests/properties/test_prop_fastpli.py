"""Property-based equivalence: ArrayPli == reference PositionListIndex."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.combination import iter_bits
from repro.storage.fastpli import ArrayPli
from repro.storage.pli import PositionListIndex, pli_for_combination
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

rows_strategy = st.lists(
    st.tuples(*([st.integers(min_value=0, max_value=3)] * N_COLUMNS)).map(
        lambda row: tuple(str(value) for value in row)
    ),
    min_size=0,
    max_size=40,
)


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


def array_pli_for_mask(relation, mask):
    columns = list(iter_bits(mask))
    current = ArrayPli.for_column(relation, columns[0])
    for column in columns[1:]:
        current = current.intersect(ArrayPli.for_column(relation, column))
    return current


@given(rows_strategy, st.integers(min_value=1, max_value=(1 << N_COLUMNS) - 1))
@settings(max_examples=120)
def test_array_pli_matches_reference(rows, mask):
    relation = build_relation(rows)
    reference = set(PositionListIndex.for_mask(relation, mask).clusters())
    fast = set(array_pli_for_mask(relation, mask).clusters())
    assert fast == reference


@given(rows_strategy)
@settings(max_examples=60)
def test_array_pli_column_build_matches_reference(rows):
    relation = build_relation(rows)
    for column in range(N_COLUMNS):
        reference = PositionListIndex.for_column(relation, column)
        fast = ArrayPli.for_column(relation, column)
        assert set(fast.clusters()) == set(reference.clusters())
        assert fast.has_duplicates == reference.has_duplicates
        assert fast.n_entries() == reference.n_entries()


@given(rows_strategy, st.integers(min_value=1, max_value=(1 << N_COLUMNS) - 1))
@settings(max_examples=60)
def test_intersection_order_is_irrelevant(rows, mask):
    relation = build_relation(rows)
    plis = {
        column: PositionListIndex.for_column(relation, column)
        for column in range(N_COLUMNS)
    }
    reference = set(pli_for_combination(relation, mask, plis).clusters())
    columns = list(iter_bits(mask))
    current = ArrayPli.for_column(relation, columns[-1])
    for column in reversed(columns[:-1]):
        current = current.intersect(ArrayPli.for_column(relation, column))
    assert set(current.clusters()) == reference


def test_single_cluster_and_empty():
    empty = ArrayPli.single_cluster([5], capacity=10)
    assert not empty.has_duplicates
    assert list(empty.clusters()) == []
    full = ArrayPli.single_cluster([1, 4, 7], capacity=10)
    assert full.has_duplicates
    assert list(full.clusters()) == [frozenset({1, 4, 7})]
