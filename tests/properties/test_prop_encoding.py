"""Dictionary encoding behaves exactly like the hashes it replaced.

Two laws, property-tested over awkward value domains (ints mixed with
strings, ``None``, empty strings, strings with embedded newlines):

* Round-trip: a relation built on the encoded columnar core hands back
  every inserted row unchanged, and two cells receive the same code
  iff their values are Python-equal.
* ``lookup_batch`` agrees with per-value ``lookup`` for every probed
  value -- including values the index has never seen.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.encoding import ColumnEncoding
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.value_index import ValueIndex

values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["", "a", "b", "line\nbreak", "None"]),
    st.none(),
)

rows = st.lists(st.tuples(values, values), min_size=0, max_size=40)


@given(rows)
@settings(max_examples=200)
def test_relation_round_trip_is_exact(batch):
    relation = Relation.from_rows(Schema(["a", "b"]), batch)
    assert list(relation.iter_rows()) == list(batch)
    for tuple_id, row in enumerate(batch):
        assert relation.row(tuple_id) == row


@given(st.lists(values, min_size=0, max_size=60))
@settings(max_examples=200)
def test_codes_agree_iff_values_equal(column):
    encoding = ColumnEncoding()
    codes = encoding.append_batch(column).tolist()
    for left, left_code in zip(column, codes):
        for right, right_code in zip(column, codes):
            assert (left == right) == (left_code == right_code)
    # decode returns the first-seen representative of the equality
    # class -- an equal value, though not necessarily the same object.
    for value, code in zip(column, codes):
        assert encoding.decode(code) == value


@given(
    st.lists(st.tuples(values, values), min_size=1, max_size=30),
    st.lists(values, min_size=0, max_size=15),
)
@settings(max_examples=200)
def test_lookup_batch_agrees_with_lookup(batch, probes):
    relation = Relation.from_rows(Schema(["a", "b"]), batch)
    index = ValueIndex.build(relation, 0)
    # Probe both values that exist and values that may be unseen.
    probe_values = [row[0] for row in batch] + probes
    postings = index.lookup_batch(probe_values)
    assert len(postings) == len(probe_values)
    for value, posting in zip(probe_values, postings):
        assert frozenset(posting.tolist()) == index.lookup(value)
        assert posting.tolist() == sorted(index.lookup_array(value).tolist())
