"""Property: SWAN's insert handler is exact under ANY index choice.

The value indexes are a performance structure; correctness must never
depend on which columns are indexed (full cover, partial cover, or no
indexes at all -- the fallback scan). This drives random batches
through profilers with randomly chosen index columns and compares
against the oracle.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))


@given(
    st.lists(row_strategy, min_size=2, max_size=15),
    st.lists(row_strategy, min_size=1, max_size=4),
    st.sets(st.integers(min_value=0, max_value=N_COLUMNS - 1), max_size=N_COLUMNS),
)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_any_index_subset_is_exact(rows, batch, index_columns):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    relation = Relation.from_rows(schema, rows)
    mucs, mnucs = discover_bruteforce(relation)
    profiler = SwanProfiler(
        relation,
        mucs,
        mnucs,
        index_columns=sorted(index_columns),
        maintain_plis=False,
    )
    profile = profiler.handle_inserts(batch)
    expected_mucs, expected_mnucs = discover_bruteforce(relation)
    assert sorted(profile.mucs) == sorted(expected_mucs)
    assert sorted(profile.mnucs) == sorted(expected_mnucs)


@given(
    st.lists(row_strategy, min_size=2, max_size=15),
    st.lists(row_strategy, min_size=1, max_size=4),
    st.integers(min_value=0, max_value=N_COLUMNS),
)
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_any_quota_is_exact(rows, batch, quota):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    relation = Relation.from_rows(schema, rows)
    mucs, mnucs = discover_bruteforce(relation)
    profiler = SwanProfiler(
        relation, mucs, mnucs, index_quota=quota or None, maintain_plis=False
    )
    profile = profiler.handle_inserts(batch)
    expected_mucs, __ = discover_bruteforce(relation)
    assert sorted(profile.mucs) == sorted(expected_mucs)
