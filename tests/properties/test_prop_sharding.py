"""Sharded profiling is bit-identical to unsharded and scalar SWAN.

For every drawn workload the same mixed insert/delete batch stream is
replayed through the scalar ``ReferenceDynamicRunner`` (frozen
pre-vectorization pipeline), an unsharded ``SwanProfiler``, and sharded
facades at K in {1, 2, 4} in both thread and process execution modes.
After every batch all (MUCS, MNUCS) profiles must be identical, and a
mid-run storage compaction on every profiler (per-shard, ID-preserving)
must not perturb anything.

Delete batches are drawn as index lists and resolved against the live
tuple IDs at apply time, so every driver sees the same batch even after
earlier deletes reshaped the ID space.
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reference import ReferenceDynamicRunner
from repro.core.swan import SwanProfiler
from repro.profiling.verify import verify_profile
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4
SHARD_COUNTS = (1, 2, 4)

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))

insert_op = st.tuples(
    st.just("insert"), st.lists(row_strategy, min_size=1, max_size=4)
)
delete_op = st.tuples(
    st.just("delete"),
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=3),
)


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


def resolve_deletes(relation, picks):
    """Map drawn indices onto the live ID space (same for every driver)."""
    live = list(relation.iter_ids())
    if not live:
        return []
    return sorted({live[pick % len(live)] for pick in picks})


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process fan-out needs fork",
)
@given(
    st.lists(row_strategy, min_size=4, max_size=12),
    st.lists(st.one_of(insert_op, delete_op), min_size=1, max_size=5),
    st.integers(min_value=0, max_value=4),
)
@settings(
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_sharding_bit_identical(rows, ops, compact_at):
    scalar = None
    profilers = {}
    try:
        flat = SwanProfiler.profile(build_relation(rows), algorithm="bruteforce")
        initial = flat.snapshot()
        profilers = {"flat": flat}
        for shards in SHARD_COUNTS:
            for mode in ("thread", "process"):
                profilers[f"shards{shards}-{mode}"] = SwanProfiler.profile(
                    build_relation(rows),
                    algorithm="bruteforce",
                    shards=shards,
                    execution_mode=mode,
                )
        # shards=1 with the default entry point returns the unsharded
        # profiler; force the facade so K=1 exercises the merge path.
        from repro.shard import ShardedSwanProfiler

        profilers["facade1"] = ShardedSwanProfiler.partition(
            build_relation(rows), shards=1, algorithm="bruteforce"
        )
        scalar = ReferenceDynamicRunner(
            build_relation(rows),
            list(initial.mucs),
            list(initial.mnucs),
            index_columns=list(range(N_COLUMNS)),
        )
        for step, (kind, payload) in enumerate(ops):
            if kind == "insert":
                expected = scalar.handle_inserts(payload)
                got = {
                    name: profiler.handle_inserts(payload)
                    for name, profiler in profilers.items()
                }
            else:
                doomed = resolve_deletes(flat.relation, payload)
                if not doomed:
                    continue
                expected = scalar.handle_deletes(doomed)
                got = {
                    name: profiler.handle_deletes(doomed)
                    for name, profiler in profilers.items()
                }
            for name, profile in got.items():
                assert sorted(profile.mucs) == sorted(expected.mucs), name
                assert sorted(profile.mnucs) == sorted(expected.mnucs), name
            if step == compact_at:
                for profiler in profilers.values():
                    profiler.compact_storage()
        final = flat.snapshot()
        verify_profile(flat.relation, list(final.mucs), list(final.mnucs))
    finally:
        for profiler in profilers.values():
            profiler.close()
