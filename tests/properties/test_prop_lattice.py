"""Property-based tests for the lattice machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.antichain import MaximalAntichain, MinimalAntichain
from repro.lattice.combination import (
    columns_of,
    is_subset,
    mask_of,
    maximize,
    minimize,
    popcount,
)
from repro.lattice.enumeration import is_antichain

masks = st.integers(min_value=0, max_value=(1 << 10) - 1)
mask_lists = st.lists(masks, min_size=0, max_size=40)


@given(masks)
def test_mask_roundtrip(mask):
    assert mask_of(columns_of(mask)) == mask
    assert popcount(mask) == len(columns_of(mask))


@given(masks, masks)
def test_subset_consistency(left, right):
    assert is_subset(left, right) == (set(columns_of(left)) <= set(columns_of(right)))


@given(mask_lists)
def test_minimize_is_minimal_antichain(masks_in):
    result = minimize(masks_in)
    assert is_antichain(result)
    # every input is dominated by some output
    for mask in masks_in:
        assert any(is_subset(member, mask) for member in result)
    # every output was an input
    assert set(result) <= set(masks_in)


@given(mask_lists)
def test_maximize_is_maximal_antichain(masks_in):
    result = maximize(masks_in)
    assert is_antichain(result)
    for mask in masks_in:
        assert any(is_subset(mask, member) for member in result)
    assert set(result) <= set(masks_in)


@given(mask_lists)
@settings(max_examples=60)
def test_minimal_antichain_container_matches_minimize(masks_in):
    container = MinimalAntichain()
    for mask in masks_in:
        container.add(mask)
    assert sorted(container.masks()) == sorted(minimize(masks_in))


@given(mask_lists)
@settings(max_examples=60)
def test_maximal_antichain_container_matches_maximize(masks_in):
    container = MaximalAntichain()
    for mask in masks_in:
        container.add(mask)
    assert sorted(container.masks()) == sorted(maximize(masks_in))


@given(mask_lists, masks)
@settings(max_examples=60)
def test_antichain_queries_match_definition(masks_in, probe):
    container = MinimalAntichain()
    for mask in masks_in:
        container.add(mask)
    members = container.masks()
    assert container.contains_subset_of(probe) == any(
        is_subset(member, probe) for member in members
    )
    assert container.contains_superset_of(probe) == any(
        is_subset(probe, member) for member in members
    )
