"""The vectorized insert path is bit-identical to the frozen reference.

Two drivers consume the same random insert workload from the same
starting profile: the live ``SwanProfiler`` (dictionary codes, numpy
postings, lexsort grouping) and ``ReferenceInsertRunner``, the frozen
scalar pre-vectorization pipeline. After every batch their (MUCS,
MNUCS) must be identical, and the final vectorized profile must verify
against ground truth. The index cover is drawn per example, so the
equivalence holds for full, partial, and empty covers alike.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reference import ReferenceInsertRunner
from repro.core.swan import SwanProfiler
from repro.profiling.verify import verify_profile
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


@given(
    st.lists(row_strategy, min_size=4, max_size=20),
    st.lists(
        st.lists(row_strategy, min_size=1, max_size=6),
        min_size=1,
        max_size=4,
    ),
    st.sets(
        st.integers(min_value=0, max_value=N_COLUMNS - 1), max_size=N_COLUMNS
    ),
)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_vectorized_inserts_match_scalar_reference(rows, batches, cover):
    index_columns = sorted(cover)
    vectorized = SwanProfiler.profile(
        build_relation(rows),
        algorithm="bruteforce",
        index_columns=index_columns,
        maintain_plis=False,
    )
    initial = vectorized.snapshot()
    scalar = ReferenceInsertRunner(
        build_relation(rows),
        list(initial.mucs),
        list(initial.mnucs),
        index_columns,
    )
    try:
        for batch in batches:
            got = vectorized.handle_inserts(batch)
            expected = scalar.handle_inserts(batch)
            assert sorted(got.mucs) == sorted(expected.mucs)
            assert sorted(got.mnucs) == sorted(expected.mnucs)
            stats = vectorized.last_insert_stats
            reference_stats = scalar.last_stats
            assert stats.candidate_ids == reference_stats.candidate_ids
            assert stats.broken_mucs == reference_stats.broken_mucs
            assert stats.duplicate_groups == reference_stats.duplicate_groups
        final = vectorized.snapshot()
        verify_profile(
            vectorized.relation, list(final.mucs), list(final.mnucs)
        )
    finally:
        vectorized.close()
