"""Property test: antichain bitmap slots survive add/discard churn.

The vertical-bitmap antichain recycles member slots through a free
list; stale bits would silently corrupt every implication query in the
library. This drives random add/discard sequences against a reference
implementation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.antichain import MaximalAntichain, MinimalAntichain
from repro.lattice.combination import is_subset, maximize, minimize

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard"]),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
    ),
    min_size=0,
    max_size=80,
)


class _ReferenceMinimal:
    def __init__(self):
        self.members: set[int] = set()

    def add(self, mask):
        if any(is_subset(member, mask) for member in self.members):
            return
        self.members = {m for m in self.members if not is_subset(mask, m)}
        self.members.add(mask)

    def discard(self, mask):
        self.members.discard(mask)


@given(operations, st.integers(min_value=0, max_value=(1 << 8) - 1))
@settings(max_examples=150)
def test_minimal_antichain_under_churn(ops, probe):
    container = MinimalAntichain()
    reference = _ReferenceMinimal()
    for action, mask in ops:
        if action == "add":
            container.add(mask)
            reference.add(mask)
        else:
            container.discard(mask)
            reference.discard(mask)
        assert container.masks() == frozenset(reference.members)
    members = reference.members
    assert container.contains_subset_of(probe) == any(
        is_subset(member, probe) for member in members
    )
    assert container.contains_superset_of(probe) == any(
        is_subset(probe, member) for member in members
    )
    assert sorted(container.supersets_of(probe)) == sorted(
        member for member in members if is_subset(probe, member)
    )
    assert sorted(container.subsets_of(probe)) == sorted(
        member for member in members if is_subset(member, probe)
    )


@given(st.lists(st.integers(min_value=0, max_value=(1 << 8) - 1), max_size=60))
@settings(max_examples=100)
def test_interleaved_containers_stay_independent(masks):
    """Two containers fed the same stream never share state."""
    minimal = MinimalAntichain()
    maximal = MaximalAntichain()
    for mask in masks:
        minimal.add(mask)
        maximal.add(mask)
    assert sorted(minimal.masks()) == sorted(minimize(masks))
    assert sorted(maximal.masks()) == sorted(maximize(masks))
