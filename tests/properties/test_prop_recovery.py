"""The crash-recovery invariant, property-tested.

For random insert/delete batch sequences: kill the service after *any*
committed changelog record -- including mid-record torn writes -- and
restart-time recovery must land exactly on a committed prefix state,
never behind the newest snapshot, with MUCS/MNUCS identical to the
uninterrupted run at that sequence and definitionally correct for the
recovered relation.
"""

import os
import shutil
import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.profiling.verify import verify_profile
from repro.service.changelog import MAGIC, scan_file
from repro.service.server import CHANGELOG_NAME, ProfilingService, ServiceConfig
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 3
_FILE_HEADER = len(MAGIC) + 8  # magic + u64 base_seq
_FRAME = struct.Struct("<IIQ")

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))

initial_rows = st.lists(row_strategy, min_size=2, max_size=8)

# a script step is ("insert", rows) or ("delete", selector seed)
step_strategy = st.one_of(
    st.tuples(st.just("insert"), st.lists(row_strategy, min_size=1, max_size=3)),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=1_000)),
)
script_strategy = st.lists(step_strategy, min_size=1, max_size=5)


def state_of(profiler):
    profile = profiler.snapshot()
    return (
        sorted(profile.mucs),
        sorted(profile.mnucs),
        list(profiler.relation.iter_items()),
    )


def run_live(data_dir, rows, script, snapshot_every):
    """Drive a service over the script without ever stopping it (the
    "crash" leaves the data dir as-is).  Returns the expected states
    indexed by sequence number: states[0] is the bootstrap profile,
    states[seq] the profile after committing record ``seq``."""
    relation = Relation.from_rows(
        Schema([f"c{index}" for index in range(N_COLUMNS)]), rows
    )
    service = ProfilingService(
        data_dir,
        config=ServiceConfig(
            algorithm="bruteforce",
            snapshot_every=snapshot_every,
            status_every=0,
            fsync=False,  # durability against power loss is not under test
        ),
    )
    service.start(initial=relation)
    states = [state_of(service.profiler)]
    for kind, payload in script:
        if kind == "insert":
            service.apply_insert_batch(payload)
        else:
            live = list(service.profiler.relation.iter_ids())
            if not live:
                continue
            service.apply_delete_batch([live[payload % len(live)]])
        states.append(state_of(service.profiler))
    return states


def crash_points(log_path, n_records):
    """Truncation offsets: every record boundary, plus a torn cut five
    bytes into the record that follows each boundary."""
    data = open(log_path, "rb").read()
    boundaries = [_FILE_HEADER]
    offset = _FILE_HEADER
    for _ in range(n_records):
        length, _, _ = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size + length
        boundaries.append(offset)
    assert offset == len(data)
    points = []
    for committed, boundary in enumerate(boundaries):
        points.append((committed, boundary))
        if boundary < len(data):
            points.append((committed, boundary + 5))
    return points


@given(initial_rows, script_strategy, st.sampled_from([0, 1, 2]))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_equals_uninterrupted_run(
    tmp_path_factory, rows, script, snap_every
):
    base = str(tmp_path_factory.mktemp("prop_recovery"))
    live_dir = os.path.join(base, "live")
    states = run_live(live_dir, rows, script, snapshot_every=snap_every)
    log_path = os.path.join(live_dir, CHANGELOG_NAME)
    n_records = scan_file(log_path).last_seq
    assert n_records == len(states) - 1

    for committed, cut in crash_points(log_path, n_records):
        crash_dir = os.path.join(base, f"crash-{committed}-{cut}")
        shutil.copytree(live_dir, crash_dir)
        with open(os.path.join(crash_dir, CHANGELOG_NAME), "r+b") as handle:
            handle.truncate(cut)

        recovered = ProfilingService(
            crash_dir,
            config=ServiceConfig(algorithm="bruteforce", fsync=False),
        ).start()
        try:
            result = recovered.last_recovery
            # recovery may be AHEAD of the cut (a snapshot outlived the
            # log bytes we destroyed) but never behind a committed,
            # snapshotted state -- and always on a committed prefix.
            assert result.last_seq >= min(committed, result.snapshot_seq)
            assert result.last_seq == max(committed, result.snapshot_seq)
            mucs, mnucs, items = states[result.last_seq]
            profile = recovered.profiler.snapshot()
            assert sorted(profile.mucs) == mucs, (committed, cut)
            assert sorted(profile.mnucs) == mnucs, (committed, cut)
            assert list(recovered.profiler.relation.iter_items()) == items
            verify_profile(
                recovered.profiler.relation,
                profile.mucs,
                profile.mnucs,
                exhaustive=True,
            )
        finally:
            recovered.stop()
        shutil.rmtree(crash_dir)
