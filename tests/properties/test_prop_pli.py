"""Property-based tests for position list indexes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pli import PositionListIndex, pli_for_combination
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

rows_strategy = st.lists(
    st.tuples(*([st.integers(min_value=0, max_value=3)] * N_COLUMNS)).map(
        lambda row: tuple(str(value) for value in row)
    ),
    min_size=0,
    max_size=30,
)


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


@given(rows_strategy, st.integers(min_value=1, max_value=(1 << N_COLUMNS) - 1))
@settings(max_examples=120)
def test_intersection_equals_direct_grouping(rows, mask):
    """DESIGN.md invariant 8: PLI intersection == direct grouping."""
    relation = build_relation(rows)
    plis = {
        column: PositionListIndex.for_column(relation, column)
        for column in range(N_COLUMNS)
    }
    direct = set(PositionListIndex.for_mask(relation, mask).clusters())
    derived = set(pli_for_combination(relation, mask, plis).clusters())
    assert derived == direct


@given(rows_strategy)
@settings(max_examples=80)
def test_pli_entries_are_only_duplicates(rows):
    relation = build_relation(rows)
    for column in range(N_COLUMNS):
        pli = PositionListIndex.for_column(relation, column)
        for cluster in pli.clusters():
            assert len(cluster) >= 2
            values = {relation.value(tuple_id, column) for tuple_id in cluster}
            assert len(values) == 1


@given(rows_strategy, st.data())
@settings(max_examples=80)
def test_dynamic_maintenance_matches_rebuild(rows, data):
    """Applying random add/remove sequences to a tracked PLI keeps it
    identical to a freshly built one."""
    relation = build_relation(rows)
    column = 0
    pli = PositionListIndex.for_column(relation, column)
    live = list(relation.iter_ids())
    n_removals = data.draw(
        st.integers(min_value=0, max_value=len(live))
    )
    doomed = live[:n_removals]
    for tuple_id in doomed:
        value = relation.value(tuple_id, column)
        pli.remove(value, tuple_id)
        relation.delete(tuple_id)
    rebuilt = PositionListIndex.for_column(relation, column)
    assert set(pli.clusters()) == set(rebuilt.clusters())
