"""Property-based end-to-end tests: SWAN == static oracle, always."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.profiling.verify import verify_profile
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))

relation_rows = st.lists(row_strategy, min_size=2, max_size=20)
batch_rows = st.lists(row_strategy, min_size=1, max_size=5)


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


@given(relation_rows, batch_rows)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_inserts_match_oracle(rows, batch):
    relation = build_relation(rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    profile = profiler.handle_inserts(batch)
    expected_mucs, expected_mnucs = discover_bruteforce(relation)
    assert sorted(profile.mucs) == sorted(expected_mucs)
    assert sorted(profile.mnucs) == sorted(expected_mnucs)


@given(relation_rows, st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_deletes_match_oracle(rows, data):
    relation = build_relation(rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    live = list(relation.iter_ids())
    count = data.draw(st.integers(min_value=1, max_value=len(live)))
    doomed = data.draw(
        st.lists(
            st.sampled_from(live), min_size=count, max_size=count, unique=True
        )
    )
    profile = profiler.handle_deletes(doomed)
    expected_mucs, expected_mnucs = discover_bruteforce(relation)
    assert sorted(profile.mucs) == sorted(expected_mucs)
    assert sorted(profile.mnucs) == sorted(expected_mnucs)


@given(relation_rows, batch_rows)
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_profile_always_verifies(rows, batch):
    """Whatever the workload, the reported profile satisfies the
    definitional checks and the duality (DESIGN.md invariants 1-4)."""
    relation = build_relation(rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    profiler.handle_inserts(batch)
    snapshot = profiler.snapshot()
    verify_profile(relation, snapshot.mucs, snapshot.mnucs, exhaustive=True)
