"""Parallel fan-out + partition cache == the serial, uncached path.

Two profilers walk the same mixed insert/delete workload: the reference
(serial, cache off) and the optimized one (worker threads, cross-batch
partition cache). After every batch their profiles must be
bit-identical, the optimized profile must verify against ground truth
(the same invariant sentinel the chaos sweep runs), and every partition
still cached at the current generation must equal a from-scratch
rebuild -- while entries from older generations must never be served.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.swan import SwanProfiler
from repro.service.sentinel import InvariantSentinel
from repro.storage.pli import PositionListIndex
from repro.storage.relation import Relation
from repro.storage.schema import Schema

N_COLUMNS = 4

row_strategy = st.tuples(
    *([st.integers(min_value=0, max_value=2)] * N_COLUMNS)
).map(lambda row: tuple(str(value) for value in row))

relation_rows = st.lists(row_strategy, min_size=4, max_size=20)


def build_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


def assert_cached_partitions_exact(profiler):
    """Every live cache entry must equal a from-scratch rebuild."""
    cache = profiler._partition_cache
    relation = profiler.relation
    generation = profiler.generation
    for (kind, mask), entry in list(cache._entries.items()):
        served = cache.get(mask, generation, kind=kind)
        if entry.generation != generation:
            # The tag mismatch makes this entry unservable, full stop.
            assert served is None
            continue
        assert served is entry.partition
        expected = set(PositionListIndex.for_mask(relation, mask).clusters())
        assert set(served.clusters()) == expected, (kind, mask)


@given(relation_rows, st.data())
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_parallel_cached_profile_is_bit_identical(rows, data):
    serial = SwanProfiler.profile(
        build_relation(rows),
        algorithm="bruteforce",
        parallelism=0,
        cache_budget_bytes=0,
    )
    fancy = SwanProfiler.profile(
        build_relation(rows),
        algorithm="bruteforce",
        parallelism=3,
    )
    assert fancy._partition_cache is not None
    sentinel = InvariantSentinel()
    try:
        n_batches = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(n_batches):
            live = list(serial.relation.iter_ids())
            if live and data.draw(st.booleans()):
                count = data.draw(
                    st.integers(min_value=1, max_value=min(len(live), 6))
                )
                doomed = data.draw(
                    st.lists(
                        st.sampled_from(live),
                        min_size=count,
                        max_size=count,
                        unique=True,
                    )
                )
                expected = serial.handle_deletes(doomed)
                got = fancy.handle_deletes(doomed)
            else:
                batch = data.draw(
                    st.lists(row_strategy, min_size=1, max_size=5)
                )
                expected = serial.handle_inserts(batch)
                got = fancy.handle_inserts(batch)
            assert got.mucs == expected.mucs
            assert got.mnucs == expected.mnucs
        sentinel.check(fancy, full=True)
        assert fancy.generation == serial.generation == n_batches
        assert_cached_partitions_exact(fancy)
    finally:
        serial.close()
        fancy.close()


@given(relation_rows, st.data())
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_generation_bump_invalidates_cached_partitions(rows, data):
    """A partition cached before a batch commits is never served after.

    Inserts bump the generation without touching the cache, so every
    pre-existing entry must turn into a (stale) miss; the delete path
    re-publishes under the new generation only.
    """
    profiler = SwanProfiler.profile(
        build_relation(rows), algorithm="bruteforce", parallelism=0
    )
    cache = profiler._partition_cache
    try:
        live = list(profiler.relation.iter_ids())
        count = data.draw(st.integers(min_value=1, max_value=min(len(live), 4)))
        doomed = data.draw(
            st.lists(
                st.sampled_from(live), min_size=count, max_size=count, unique=True
            )
        )
        profiler.handle_deletes(doomed)
        published = {
            (kind, mask)
            for (kind, mask), entry in cache._entries.items()
            if entry.generation == profiler.generation
        }
        profiler.handle_inserts(
            data.draw(st.lists(row_strategy, min_size=1, max_size=3))
        )
        for kind, mask in published:
            assert cache.get(mask, profiler.generation, kind=kind) is None
        # The next delete batch repopulates -- correctly -- at the new tip.
        survivors = list(profiler.relation.iter_ids())
        profiler.handle_deletes(survivors[:1])
        assert_cached_partitions_exact(profiler)
    finally:
        profiler.close()
