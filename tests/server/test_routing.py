"""Router unit tests: placeholder extraction, 404 vs 405."""

import pytest

from repro.server.routing import Match, NoMatch, Route, Router


def handler(app, request):  # pragma: no cover - never invoked here
    raise AssertionError


def make_router():
    return Router(
        [
            Route("GET", "/tenants", handler),
            Route("POST", "/tenants", handler),
            Route("GET", "/tenants/{tenant_id}/uccs", handler),
            Route("POST", "/tenants/{tenant_id}/batches", handler),
        ]
    )


class TestMatching:
    def test_exact_match(self):
        match = make_router().match("GET", "/tenants")
        assert isinstance(match, Match)
        assert match.params == {}

    def test_placeholder_extracted(self):
        match = make_router().match("GET", "/tenants/t-1.x/uccs")
        assert isinstance(match, Match)
        assert match.params == {"tenant_id": "t-1.x"}

    def test_placeholder_does_not_span_segments(self):
        result = make_router().match("GET", "/tenants/a/b/uccs")
        assert isinstance(result, NoMatch)
        assert not result.method_mismatch

    def test_unknown_path_is_404(self):
        result = make_router().match("GET", "/nope")
        assert isinstance(result, NoMatch)
        assert not result.method_mismatch

    def test_wrong_method_is_405_with_allow(self):
        result = make_router().match("DELETE", "/tenants")
        assert isinstance(result, NoMatch)
        assert result.method_mismatch
        assert result.allowed == ("GET", "POST")

    def test_pattern_must_be_rooted(self):
        with pytest.raises(ValueError, match="must start with"):
            Route("GET", "tenants", handler)

    def test_literal_dots_not_regex(self):
        router = Router([Route("GET", "/t/{tenant_id}/rows.csv", handler)])
        assert isinstance(router.match("GET", "/t/x/rows.csv"), Match)
        assert isinstance(router.match("GET", "/t/x/rowsXcsv"), NoMatch)
