"""End-to-end over real sockets: N tenants, concurrent clients,
bit-identity against direct SwanProfiler runs.

The acceptance test for the multi-tenant front-end: three tenants are
driven over HTTP by three concurrent client threads, each interleaving
insert and delete batches. After a flush, every tenant's served
MUCS/MNUCS masks must be *bit-identical* to a SwanProfiler fed the same
batch sequence directly -- the HTTP/queue/worker stack must add exactly
nothing to the profiling semantics.
"""

import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.server.app import ReproServerApp
from repro.server.http import serve_in_thread
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.tenants.manager import TenantManager

COLUMNS = ["c0", "c1", "c2", "c3"]


def make_workload(seed):
    """A deterministic interleaved insert/delete batch sequence.

    Tuple ids are assigned in insertion order (initial rows first), so
    the delete targets are known in advance and identical for the HTTP
    run and the direct oracle run.
    """
    rng = random.Random(seed)

    def row():
        return [str(rng.randrange(4)) for _ in COLUMNS]

    initial = [row() for _ in range(6)]
    ops = []
    next_id = len(initial)
    live = list(range(len(initial)))
    for _ in range(8):
        if rng.random() < 0.6 or len(live) < 3:
            rows = [row() for _ in range(rng.randint(1, 3))]
            ops.append(("insert", rows))
            live.extend(range(next_id, next_id + len(rows)))
            next_id += len(rows)
        else:
            victims = rng.sample(live, rng.randint(1, 2))
            ops.append(("delete", victims))
            live = [i for i in live if i not in victims]
    return initial, ops


def oracle_masks(initial_rows, ops):
    """Replay the same workload on a SwanProfiler directly."""
    relation = Relation.from_rows(
        Schema(list(COLUMNS)), [tuple(r) for r in initial_rows]
    )
    mucs, mnucs = discover_bruteforce(relation)
    profiler = SwanProfiler(relation, mucs, mnucs)
    for kind, payload in ops:
        if kind == "insert":
            profiler.handle_inserts([tuple(r) for r in payload])
        else:
            profiler.handle_deletes(payload)
    profile = profiler.snapshot()
    return sorted(profile.mucs), sorted(profile.mnucs)


@pytest.fixture
def server(tmp_path):
    manager = TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)
    app = ReproServerApp(manager)
    handle = serve_in_thread(app)
    yield handle, manager
    handle.close()
    manager.close_all()


def request(url, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestManyTenantsConcurrently:
    def test_three_tenants_bit_identical_to_swan(self, server):
        handle, _manager = server
        url = handle.url
        tenants = {f"tenant-{i}": make_workload(seed=100 + i) for i in range(3)}

        for tenant_id, (initial, _ops) in tenants.items():
            status, doc = request(
                url,
                "POST",
                "/tenants",
                {
                    "tenant_id": tenant_id,
                    "config": {
                        "columns": COLUMNS,
                        "algorithm": "bruteforce",
                        "fsync": False,
                    },
                    "rows": initial,
                },
            )
            assert status == 201, doc

        errors = []

        def drive(tenant_id, ops):
            try:
                for index, (kind, payload) in enumerate(ops):
                    body = {"kind": kind, "token": f"{tenant_id}-{index}"}
                    if kind == "insert":
                        body["rows"] = payload
                    else:
                        body["tuple_ids"] = payload
                    status, doc = request(
                        url, "POST", f"/tenants/{tenant_id}/batches", body
                    )
                    if status not in (200, 202):
                        raise AssertionError(
                            f"{tenant_id} batch {index}: {status} {doc}"
                        )
            except Exception as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(tenant_id, ops))
            for tenant_id, (_initial, ops) in tenants.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        for tenant_id, (initial, ops) in tenants.items():
            status, doc = request(url, "POST", f"/tenants/{tenant_id}/flush", {})
            assert (status, doc["flushed"]) == (200, True)
            status, served = request(url, "GET", f"/tenants/{tenant_id}/uccs")
            assert status == 200
            expected_mucs, expected_mnucs = oracle_masks(initial, ops)
            assert sorted(e["mask"] for e in served["mucs"]) == expected_mucs
            assert sorted(e["mask"] for e in served["mnucs"]) == expected_mnucs
            # No cross-tenant bleed in bookkeeping either.
            status, dl = request(url, "GET", f"/tenants/{tenant_id}/dead-letters")
            assert (status, dl["count"]) == (200, 0)

        status, fleet = request(url, "GET", "/fleet/status")
        assert status == 200
        assert fleet["totals"]["tenants"] == 3
        assert fleet["totals"]["serving"] == 3

    def test_queue_full_over_the_wire(self, server):
        handle, manager = server
        url = handle.url
        status, _doc = request(
            url,
            "POST",
            "/tenants",
            {
                "tenant_id": "busy",
                "config": {
                    "columns": COLUMNS,
                    "algorithm": "bruteforce",
                    "fsync": False,
                    "max_pending_batches": 1,
                },
            },
        )
        assert status == 201
        manager.get("busy").worker.pause()
        status, doc = request(
            url, "POST", "/tenants/busy/batches",
            {"kind": "insert", "rows": [["1", "2", "3", "4"]]},
        )
        assert status == 202, doc
        status, doc = request(
            url, "POST", "/tenants/busy/batches",
            {"kind": "insert", "rows": [["5", "6", "7", "8"]]},
        )
        assert status == 429
        error = doc["error"]
        assert error["code"] == "queue_full"
        assert error["tenant"] == "busy"
        assert error["max_pending_batches"] == 1
        manager.get("busy").worker.resume()
        status, doc = request(url, "POST", "/tenants/busy/flush", {})
        assert (status, doc["flushed"]) == (200, True)

    def test_restartable_over_registry(self, tmp_path):
        """Stop the whole server; a new one re-serves the same tenants."""
        root = str(tmp_path / "fleet")
        manager = TenantManager(root, sleep=lambda _s: None)
        handle = serve_in_thread(ReproServerApp(manager))
        status, _doc = request(
            handle.url,
            "POST",
            "/tenants",
            {
                "tenant_id": "durable",
                "config": {"columns": COLUMNS, "algorithm": "bruteforce"},
                "rows": [["1", "2", "3", "4"]],
            },
        )
        assert status == 201
        request(
            handle.url, "POST", "/tenants/durable/batches",
            {"kind": "insert", "rows": [["5", "6", "7", "8"]], "token": "once"},
        )
        request(handle.url, "POST", "/tenants/durable/flush", {})
        handle.close()
        manager.close_all()

        manager2 = TenantManager(root, sleep=lambda _s: None)
        manager2.open_all()
        handle2 = serve_in_thread(ReproServerApp(manager2))
        try:
            status, doc = request(handle2.url, "GET", "/tenants/durable/uccs")
            assert status == 200
            assert doc["live_rows"] == 2
            # Token dedup survives the restart.
            status, doc = request(
                handle2.url, "POST", "/tenants/durable/batches",
                {"kind": "insert", "rows": [["5", "6", "7", "8"]], "token": "once"},
            )
            assert (status, doc["outcome"]) == (200, "duplicate")
        finally:
            handle2.close()
            manager2.close_all()
