"""HTTP robustness: slow-loris defenses, bounded reads, typed failures.

Misbehaving clients -- stalled senders, header stuffing, bodies that
lie about their length -- must cost the server one counted, dropped
connection, never a pinned handler thread or a half-parsed request
dispatched as if it were real. The operator levers (recover, force
drop) and the typed 5xx contract (504 flush_timeout, 503
tenant_parked / tenant_recovering with Retry-After) are exercised over
real sockets.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.server.app import ReproServerApp
from repro.server.http import MAX_BODY_BYTES, serve_in_thread
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


@pytest.fixture
def manager(tmp_path):
    with TenantManager(
        str(tmp_path / "fleet"), sleep=lambda _s: None
    ) as manager:
        yield manager


def start_server(manager, request_timeout=5.0):
    app = ReproServerApp(manager)
    handle = serve_in_thread(app, request_timeout=request_timeout)
    return app, handle


def request(url, method, path, body=None, headers=(), raw_body=None):
    data = raw_body
    if data is None and body is not None:
        data = json.dumps(body).encode()
    req = urllib.request.Request(
        url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **dict(headers)},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), exc.headers


def wait_for_counter(app, name, minimum=1, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if app.metrics.counter(name).value >= minimum:
            return True
        time.sleep(0.02)
    return False


class TestSlowClients:
    def test_stalled_request_line_times_out(self, manager):
        _app, handle = start_server(manager, request_timeout=0.3)
        try:
            sock = socket.create_connection(handle.address, timeout=5.0)
            try:
                sock.sendall(b"GET /healthz HT")  # ... and never finish
                sock.settimeout(5.0)
                # The server drops the line instead of waiting forever.
                assert sock.recv(4096) == b""
            finally:
                sock.close()
        finally:
            handle.close()

    def test_stalled_body_times_out_and_is_counted(self, manager):
        manager.create("t1", make_config(), initial_rows=ROWS)
        app, handle = start_server(manager, request_timeout=0.3)
        try:
            sock = socket.create_connection(handle.address, timeout=5.0)
            try:
                sock.sendall(
                    b"POST /tenants/t1/batches HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 512\r\n\r\n"
                    b'{"kind'  # stall with 506 bytes outstanding
                )
                assert wait_for_counter(app, "http_timeouts_total")
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""
            finally:
                sock.close()
        finally:
            handle.close()
        # Nothing was dispatched from the truncated payload.
        assert len(manager.get("t1").service.profiler.relation) == 3


class TestBoundedReads:
    def test_header_stuffing_gets_431(self, manager):
        _app, handle = start_server(manager)
        try:
            status, doc, _headers = request(
                handle.url,
                "GET",
                "/healthz",
                headers=[("X-Pad", "a" * 20_000)],
            )
            assert status == 431
            assert doc["error"]["code"] == "headers_too_large"
        finally:
            handle.close()

    def test_oversized_body_refused_before_reading(self, manager):
        _app, handle = start_server(manager)
        try:
            sock = socket.create_connection(handle.address, timeout=5.0)
            try:
                # Claim a body one byte past the cap; send none of it.
                # The 413 must come back *before* any body is read.
                sock.sendall(
                    b"POST /tenants/t1/batches HTTP/1.1\r\n"
                    b"Host: x\r\nConnection: close\r\n"
                    b"Content-Length: %d\r\n\r\n" % (MAX_BODY_BYTES + 1)
                )
                sock.settimeout(5.0)
                response = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
                assert b" 413 " in response
                assert b"body_too_large" in response
            finally:
                sock.close()
        finally:
            handle.close()

    def test_truncated_body_is_dropped_and_counted(self, manager):
        manager.create("t1", make_config(), initial_rows=ROWS)
        app, handle = start_server(manager)
        try:
            sock = socket.create_connection(handle.address, timeout=5.0)
            try:
                sock.sendall(
                    b"POST /tenants/t1/batches HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 4096\r\n\r\n"
                    b'{"kind": "insert"'
                )
            finally:
                sock.close()  # hang up with most of the body unsent
            assert wait_for_counter(app, "http_resets_total")
            # The short payload was never dispatched as a request.
            assert manager.flush("t1")
            assert len(manager.get("t1").service.profiler.relation) == 3
            # Transport counters are visible to operators in /healthz.
            status, doc, _headers = request(handle.url, "GET", "/healthz")
            assert status == 200
            assert doc["transport"]["http_resets_total"] >= 1
        finally:
            handle.close()

    def test_malformed_json_is_400(self, manager):
        manager.create("t1", make_config(), initial_rows=ROWS)
        _app, handle = start_server(manager)
        try:
            status, doc, _headers = request(
                handle.url,
                "POST",
                "/tenants/t1/batches",
                raw_body=b"{not json",
            )
            assert status == 400
            assert doc["error"]["code"] == "bad_request"
        finally:
            handle.close()


class TestOperatorLevers:
    def test_parked_tenant_503_then_recover_endpoint(self, manager):
        manager.create("t1", make_config(), initial_rows=ROWS)
        _app, handle = start_server(manager)
        try:
            manager.park("t1", "operator drill", by="operator")
            status, doc, _headers = request(
                handle.url,
                "POST",
                "/tenants/t1/batches",
                {"kind": "insert", "rows": [["Ada", "111", "9"]]},
            )
            assert status == 503
            assert doc["error"]["code"] == "tenant_parked"
            assert "operator drill" in doc["error"]["reason"]

            status, doc, _headers = request(
                handle.url, "POST", "/tenants/t1/recover", {}
            )
            assert status == 200
            assert doc["recovered"] is True
            assert doc["health"] == "serving"
            assert doc["live_rows"] == 3
            status, doc, _headers = request(
                handle.url,
                "POST",
                "/tenants/t1/batches",
                {"kind": "insert", "rows": [["Ada", "111", "9"]]},
            )
            assert status == 202
        finally:
            handle.close()

    def test_recovering_tenant_503_with_retry_after(self, manager):
        manager.create("t1", make_config(), initial_rows=ROWS)
        _app, handle = start_server(manager)
        try:
            manager.set_breaker("t1", retry_after=2.0)
            status, doc, headers = request(
                handle.url,
                "POST",
                "/tenants/t1/batches",
                {"kind": "insert", "rows": [["Ada", "111", "9"]]},
            )
            assert status == 503
            assert doc["error"]["code"] == "tenant_recovering"
            assert headers["Retry-After"] == "2"
            manager.clear_breaker("t1")
        finally:
            handle.close()

    def test_delete_of_stuck_tenant_504_then_force(self, manager):
        tenant = manager.create("t1", make_config(), initial_rows=ROWS)
        _app, handle = start_server(manager)
        try:
            tenant.worker.pause()
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            status, doc, _headers = request(
                handle.url, "DELETE", "/tenants/t1"
            )
            assert status == 504
            assert doc["error"]["code"] == "flush_timeout"
            assert doc["error"]["pending_batches"] == 1
            # The DELETE was refused: the tenant keeps serving.
            assert manager.is_open("t1")

            status, doc, _headers = request(
                handle.url, "DELETE", "/tenants/t1?force=true"
            )
            assert status == 200
            assert doc["dropped"] is True
            assert manager.tenant_ids() == []
        finally:
            handle.close()
