"""ReproServerApp in-process: routing, handlers, typed-error mapping.

No sockets here -- requests are dispatched straight into the app, which
is the same object the HTTP adapter serves. Anything covered here holds
over the wire too.
"""

import json

import pytest

from repro.server.app import HttpRequest, ReproServerApp
from repro.tenants.manager import TenantManager

ROWS = [
    ["Lee", "345", "20"],
    ["Payne", "245", "30"],
    ["Lee", "234", "30"],
]

CONFIG = {"columns": ["Name", "Phone", "Age"], "algorithm": "bruteforce", "fsync": False}


@pytest.fixture
def app(tmp_path):
    manager = TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)
    application = ReproServerApp(manager)
    yield application
    manager.close_all()


def call(app, method, target, body=None):
    payload = b"" if body is None else json.dumps(body).encode()
    response = app.handle(HttpRequest.from_target(method, target, body=payload))
    return response.status, dict(response.document), response


def create_tenant(app, tenant_id="t1", config=None, rows=ROWS):
    return call(
        app,
        "POST",
        "/tenants",
        {"tenant_id": tenant_id, "config": config or CONFIG, "rows": rows},
    )


class TestAdmin:
    def test_create_and_list(self, app):
        status, doc, _ = create_tenant(app)
        assert status == 201
        assert doc["tenant"] == "t1"
        assert doc["live_rows"] == 3
        assert doc["health"] == "serving"
        status, doc, _ = call(app, "GET", "/tenants")
        assert status == 200
        assert doc["tenants"] == [{"tenant": "t1", "open": True}]

    def test_create_conflict_is_409(self, app):
        create_tenant(app)
        status, doc, _ = create_tenant(app)
        assert status == 409
        assert doc["error"]["code"] == "tenant_exists"

    def test_create_requires_fields(self, app):
        status, doc, _ = call(app, "POST", "/tenants", {"config": CONFIG})
        assert (status, doc["error"]["code"]) == (400, "bad_request")
        status, doc, _ = call(app, "POST", "/tenants", {"tenant_id": "x"})
        assert (status, doc["error"]["code"]) == (400, "bad_request")

    def test_create_rejects_unknown_config_key(self, app):
        config = dict(CONFIG, paralellism=4)
        status, doc, _ = create_tenant(app, config=config)
        assert status == 400
        assert "unknown tenant config key" in doc["error"]["message"]

    def test_default_config_merged_under_request(self, app):
        app.default_config = {"parallelism": 3, "algorithm": "ducc"}
        create_tenant(app, config=CONFIG)  # request algorithm wins
        tenant = app.manager.get("t1")
        assert tenant.config.parallelism == 3
        assert tenant.config.algorithm == "bruteforce"

    def test_create_sharded_tenant_over_http(self, app):
        config = dict(CONFIG, shards=2)
        status, _, _ = create_tenant(app, config=config)
        assert status == 201
        tenant = app.manager.get("t1")
        assert tenant.config.shards == 2
        assert tenant.service.profiler.shard_stats()["shard_count"] == 2
        status, doc, _ = call(app, "GET", "/fleet/status")
        assert status == 200
        assert doc["tenants"]["t1"]["gauges"]["shard_count"] == 2

    def test_shard_insert_only_config_validated_over_http(self, app):
        config = dict(CONFIG, shards=2, shard_insert_only=True)
        status, doc, _ = create_tenant(app, config=config)
        assert status == 400
        assert "requires insert_only" in doc["error"]["message"]

    def test_drop(self, app):
        create_tenant(app)
        status, doc, _ = call(app, "DELETE", "/tenants/t1")
        assert status == 200
        assert doc["dropped"] is True
        status, doc, _ = call(app, "GET", "/tenants/t1/status")
        assert status == 404
        assert doc["error"]["code"] == "unknown_tenant"


class TestDispatch:
    def test_unknown_path_404(self, app):
        status, doc, _ = call(app, "GET", "/nope")
        assert (status, doc["error"]["code"]) == (404, "not_found")

    def test_method_mismatch_405_with_allow(self, app):
        status, doc, response = call(app, "DELETE", "/healthz")
        assert (status, doc["error"]["code"]) == (405, "method_not_allowed")
        assert ("Allow", "GET") in response.headers

    def test_bad_json_body_400(self, app):
        response = app.handle(
            HttpRequest.from_target("POST", "/tenants", body=b"{nope")
        )
        assert response.status == 400
        assert response.document["error"]["code"] == "bad_request"

    def test_healthz(self, app):
        status, doc, _ = call(app, "GET", "/healthz")
        assert (status, doc["status"]) == (200, "ok")


class TestIngestAndQuery:
    def test_ingest_flush_query_cycle(self, app):
        create_tenant(app)
        status, doc, _ = call(
            app,
            "POST",
            "/tenants/t1/batches",
            {"kind": "insert", "rows": [["Ada", "111", "9"]], "token": "k1"},
        )
        assert (status, doc["outcome"]) == (202, "enqueued")
        status, doc, _ = call(
            app,
            "POST",
            "/tenants/t1/batches",
            {"kind": "insert", "rows": [["Ada", "111", "9"]], "token": "k1"},
        )
        assert (status, doc["outcome"]) == (200, "duplicate")
        status, doc, _ = call(app, "POST", "/tenants/t1/flush", {})
        assert (status, doc["flushed"]) == (200, True)
        status, doc, _ = call(app, "GET", "/tenants/t1/uccs")
        assert status == 200
        assert doc["live_rows"] == 4
        assert {e["mask"] for e in doc["mucs"]}
        assert doc["seq"] == 1

    def test_query_filters_and_validation(self, app):
        create_tenant(app)
        status, doc, _ = call(app, "GET", "/tenants/t1/uccs?max_arity=1&kind=mucs")
        assert status == 200
        assert "mnucs" not in doc
        assert all(len(e["columns"]) == 1 for e in doc["mucs"])
        status, doc, _ = call(app, "GET", "/tenants/t1/uccs?max_arity=zero")
        assert (status, doc["error"]["code"]) == (400, "bad_request")
        status, doc, _ = call(app, "GET", "/tenants/t1/uccs?contains=Name,Age")
        assert status == 200
        assert all(
            {"Name", "Age"} <= set(e["columns"]) for e in doc["mucs"]
        )

    def test_batch_kind_validation(self, app):
        create_tenant(app)
        status, doc, _ = call(
            app, "POST", "/tenants/t1/batches", {"kind": "upsert"}
        )
        assert (status, doc["error"]["code"]) == (400, "bad_request")
        status, doc, _ = call(
            app,
            "POST",
            "/tenants/t1/batches",
            {"kind": "insert", "tuple_ids": [1]},
        )
        assert status == 400

    def test_insert_only_tenant_409(self, app):
        create_tenant(app, config=dict(CONFIG, insert_only=True))
        status, doc, _ = call(
            app, "POST", "/tenants/t1/batches", {"kind": "delete", "tuple_ids": [0]}
        )
        assert (status, doc["error"]["code"]) == (409, "insert_only")

    def test_queue_full_is_structured_429(self, app):
        create_tenant(app, config=dict(CONFIG, max_pending_batches=1))
        app.manager.get("t1").worker.pause()
        call(
            app, "POST", "/tenants/t1/batches",
            {"kind": "insert", "rows": [["Ada", "111", "9"]]},
        )
        status, doc, response = call(
            app, "POST", "/tenants/t1/batches",
            {"kind": "insert", "rows": [["Bob", "222", "8"]]},
        )
        assert status == 429
        error = doc["error"]
        assert error["code"] == "queue_full"
        assert error["tenant"] == "t1"
        assert error["pending_batches"] == 1
        assert error["max_pending_batches"] == 1
        assert error["max_pending_bytes"] > 0
        assert ("Retry-After", "1") in response.headers
        app.manager.get("t1").worker.resume()

    def test_dead_letters_endpoint(self, app):
        create_tenant(app)
        call(
            app, "POST", "/tenants/t1/batches",
            {"kind": "delete", "tuple_ids": [9999]},
        )
        call(app, "POST", "/tenants/t1/flush", {})
        status, doc, _ = call(app, "GET", "/tenants/t1/dead-letters")
        assert status == 200
        assert doc["count"] == 1
        assert doc["entries"]

    def test_status_and_fleet(self, app):
        create_tenant(app)
        create_tenant(app, tenant_id="t2")
        status, doc, _ = call(app, "GET", "/tenants/t1/status")
        assert status == 200
        assert doc["health"] == "serving"
        assert doc["service"]["tenant"] == "t1"
        status, doc, _ = call(app, "GET", "/fleet/status")
        assert status == 200
        assert doc["totals"]["tenants"] == 2
        assert doc["totals"]["live_rows"] == 6


class TestDownloads:
    def test_rows_csv(self, app):
        create_tenant(app)
        response = app.handle(HttpRequest.from_target("GET", "/tenants/t1/rows.csv"))
        assert response.status == 200
        assert response.content_type.startswith("text/csv")
        lines = response.encode().decode().strip().splitlines()
        assert lines[0] == "tuple_id,Name,Phone,Age"
        assert len(lines) == 4
        assert lines[1] == "0,Lee,345,20"
