"""Unit and oracle tests for unary inclusion dependency discovery."""

import random

import pytest

from repro.ind.unary import (
    InclusionDependency,
    discover_unary_inds,
    foreign_key_candidates,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def orders_and_customers():
    customers = Relation.from_rows(
        Schema(["customer_id", "name"]),
        [("c1", "ada"), ("c2", "bob"), ("c3", "cyd")],
    )
    orders = Relation.from_rows(
        Schema(["order_id", "customer_ref"]),
        [("o1", "c1"), ("o2", "c1"), ("o3", "c3")],
    )
    return orders, customers


class TestWithinOneRelation:
    def test_simple_containment(self):
        relation = Relation.from_rows(
            Schema(["narrow", "wide"]),
            [("a", "a"), ("a", "b"), ("b", "c")],
        )
        inds = discover_unary_inds(relation)
        assert InclusionDependency("R", 0, "R", 1) in inds
        assert InclusionDependency("R", 1, "R", 0) not in inds

    def test_equal_value_sets_give_both_directions(self):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [("x", "y"), ("y", "x")]
        )
        inds = discover_unary_inds(relation)
        assert InclusionDependency("R", 0, "R", 1) in inds
        assert InclusionDependency("R", 1, "R", 0) in inds

    def test_no_trivial_self_inclusion(self):
        relation = Relation.from_rows(Schema(["a"]), [("x",)])
        assert discover_unary_inds(relation) == []

    def test_empty_column_not_lhs(self):
        relation = Relation(Schema(["a", "b"]))
        assert discover_unary_inds(relation) == []


class TestAcrossRelations:
    def test_foreign_key_shape(self, orders_and_customers):
        orders, customers = orders_and_customers
        inds = discover_unary_inds(
            orders, customers, name="orders", other_name="customers"
        )
        assert (
            InclusionDependency("orders", 1, "customers", 0) in inds
        )  # customer_ref ⊆ customer_id

    def test_named_rendering(self, orders_and_customers):
        orders, customers = orders_and_customers
        ind = InclusionDependency("orders", 1, "customers", 0)
        assert (
            ind.named(orders.schema, customers.schema)
            == "orders.customer_ref ⊆ customers.customer_id"
        )

    def test_against_bruteforce(self):
        for seed in range(10):
            rng = random.Random(seed)
            left = Relation.from_rows(
                Schema(["a", "b", "c"]),
                [
                    tuple(str(rng.randrange(4)) for _ in range(3))
                    for _ in range(rng.randint(1, 15))
                ],
            )
            right = Relation.from_rows(
                Schema(["x", "y"]),
                [
                    tuple(str(rng.randrange(4)) for _ in range(2))
                    for _ in range(rng.randint(1, 15))
                ],
            )
            got = discover_unary_inds(left, right)
            for lhs in range(3):
                lhs_values = {v for _, v in left.column_values(lhs)}
                for rhs in range(2):
                    rhs_values = {v for _, v in right.column_values(rhs)}
                    expected = bool(lhs_values) and lhs_values <= rhs_values
                    assert (
                        InclusionDependency("R", lhs, "S", rhs) in got
                    ) == expected, (seed, lhs, rhs)


class TestForeignKeyCandidates:
    def test_detects_fk(self, orders_and_customers):
        orders, customers = orders_and_customers
        candidates = foreign_key_candidates(
            orders, customers, fact_name="orders", dimension_name="customers"
        )
        assert any(
            ind.lhs == 1 and ind.rhs == 0 for ind in candidates
        )

    def test_non_unique_rhs_excluded(self):
        fact = Relation.from_rows(Schema(["ref"]), [("x",)])
        dim = Relation.from_rows(
            Schema(["dup"]), [("x",), ("x",)]
        )
        assert foreign_key_candidates(fact, dim) == []

    def test_explicit_unique_columns(self, orders_and_customers):
        orders, customers = orders_and_customers
        candidates = foreign_key_candidates(
            orders, customers, unique_columns={1}
        )
        assert candidates == []  # 'name' does not contain the refs
