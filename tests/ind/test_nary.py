"""Unit and oracle tests for n-ary inclusion dependency discovery."""

import random
from itertools import permutations

import pytest

from repro.ind.nary import (
    NaryInclusionDependency,
    discover_nary_inds,
    holds_nary,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def orders_and_customers():
    customers = Relation.from_rows(
        Schema(["customer_id", "region", "name"]),
        [("c1", "eu", "ada"), ("c2", "us", "bob"), ("c3", "eu", "cyd")],
    )
    orders = Relation.from_rows(
        Schema(["order_id", "cust_ref", "cust_region"]),
        [("o1", "c1", "eu"), ("o2", "c3", "eu"), ("o3", "c1", "eu")],
    )
    return orders, customers


class TestHoldsNary:
    def test_binary_containment(self, orders_and_customers):
        orders, customers = orders_and_customers
        assert holds_nary(orders, (1, 2), customers, (0, 1))

    def test_binary_violation_despite_unary_validity(self):
        """The classic case: both unary INDs hold but the pairing does
        not."""
        left = Relation.from_rows(Schema(["a", "b"]), [("1", "y")])
        right = Relation.from_rows(
            Schema(["c", "d"]), [("1", "x"), ("2", "y")]
        )
        assert holds_nary(left, (0,), right, (0,))
        assert holds_nary(left, (1,), right, (1,))
        assert not holds_nary(left, (0, 1), right, (0, 1))

    def test_empty_lhs_relation(self):
        left = Relation(Schema(["a"]))
        right = Relation.from_rows(Schema(["b"]), [("x",)])
        assert holds_nary(left, (0,), right, (0,))


class TestDiscovery:
    def test_finds_binary_fk(self, orders_and_customers):
        orders, customers = orders_and_customers
        inds = discover_nary_inds(
            orders, customers, max_arity=2,
            name="orders", other_name="customers",
        )
        assert (
            NaryInclusionDependency("orders", (1, 2), "customers", (0, 1)) in inds
        )

    def test_named_rendering(self, orders_and_customers):
        orders, customers = orders_and_customers
        ind = NaryInclusionDependency("orders", (1, 2), "customers", (0, 1))
        assert (
            ind.named(orders.schema, customers.schema)
            == "orders[cust_ref, cust_region] ⊆ customers[customer_id, region]"
        )

    def test_no_self_position_within_one_relation(self):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [("x", "x"), ("y", "y")]
        )
        inds = discover_nary_inds(relation, max_arity=2)
        assert all(
            all(l != r for l, r in zip(ind.lhs, ind.rhs)) for ind in inds
        )

    def test_against_bruteforce(self):
        """Levelwise discovery equals checking all positional pairings."""
        for seed in range(8):
            rng = random.Random(seed)
            left = Relation.from_rows(
                Schema(["a", "b", "c"]),
                [
                    tuple(str(rng.randrange(3)) for _ in range(3))
                    for _ in range(rng.randint(1, 10))
                ],
            )
            right = Relation.from_rows(
                Schema(["x", "y", "z"]),
                [
                    tuple(str(rng.randrange(3)) for _ in range(3))
                    for _ in range(rng.randint(1, 10))
                ],
            )
            got = {
                (ind.lhs, ind.rhs)
                for ind in discover_nary_inds(left, right, max_arity=3)
            }
            expected = set()
            columns = range(3)
            for arity in (1, 2, 3):
                from itertools import combinations

                for lhs in combinations(columns, arity):
                    for rhs in permutations(columns, arity):
                        if holds_nary(left, lhs, right, rhs):
                            expected.add((lhs, rhs))
            assert got == expected, seed

    def test_arity_cap(self, orders_and_customers):
        orders, customers = orders_and_customers
        inds = discover_nary_inds(orders, customers, max_arity=1)
        assert all(ind.arity == 1 for ind in inds)

    def test_sub_inds(self):
        ind = NaryInclusionDependency("R", (0, 2, 3), "S", (1, 4, 5))
        subs = list(ind.sub_inds())
        assert NaryInclusionDependency("R", (2, 3), "S", (4, 5)) in subs
        assert NaryInclusionDependency("R", (0, 3), "S", (1, 5)) in subs
        assert NaryInclusionDependency("R", (0, 2), "S", (1, 4)) in subs
