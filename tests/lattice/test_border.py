"""Unit tests for the generic border search (beyond the property tests
in tests/profiling/test_approximate.py)."""

import random

from repro.lattice.border import discover_border
from repro.lattice.combination import is_subset
from repro.lattice.enumeration import is_antichain


def brute_border(n_columns, predicate):
    status = {mask: predicate(mask) for mask in range(1 << n_columns)}
    minimal = sorted(
        mask
        for mask, good in status.items()
        if good
        and all(
            not status[mask & ~(1 << bit)]
            for bit in range(n_columns)
            if mask >> bit & 1
        )
    )
    maximal = sorted(
        mask
        for mask, good in status.items()
        if not good
        and all(
            status[mask | (1 << bit)]
            for bit in range(n_columns)
            if not mask >> bit & 1
        )
    )
    return minimal, maximal


def random_monotone_predicate(seed, n_columns):
    """An upward-closed predicate from random minimal generators."""
    rng = random.Random(seed)
    generators = [
        rng.randrange(1, 1 << n_columns) for _ in range(rng.randint(1, 6))
    ]

    def predicate(mask: int) -> bool:
        return any(is_subset(generator, mask) for generator in generators)

    return predicate


class TestAgainstBruteforce:
    def test_random_monotone_predicates(self):
        for seed in range(25):
            n_columns = 6
            predicate = random_monotone_predicate(seed, n_columns)
            minimal, maximal = discover_border(n_columns, predicate)
            expected = brute_border(n_columns, predicate)
            assert sorted(minimal) == expected[0], seed
            assert sorted(maximal) == expected[1], seed
            assert is_antichain(minimal)
            assert is_antichain(maximal)

    def test_predicate_called_at_most_once_per_mask(self):
        calls: dict[int, int] = {}
        predicate = random_monotone_predicate(3, 6)

        def counted(mask: int) -> bool:
            calls[mask] = calls.get(mask, 0) + 1
            return predicate(mask)

        discover_border(6, counted)
        assert all(count == 1 for count in calls.values())
