"""Unit tests for the minimal / maximal antichain containers."""

import random

from repro.lattice.antichain import MaximalAntichain, MinimalAntichain, sorted_masks
from repro.lattice.combination import is_subset, maximize, minimize


class TestMinimalAntichain:
    def test_add_keeps_minimal(self):
        chain = MinimalAntichain()
        assert chain.add(0b011)
        assert not chain.add(0b111)  # superset: rejected
        assert chain.add(0b001)  # subset: evicts 0b011
        assert chain.masks() == {0b001}

    def test_add_same_twice(self):
        chain = MinimalAntichain()
        assert chain.add(0b010)
        assert chain.add(0b010)
        assert len(chain) == 1

    def test_incomparable_members_coexist(self):
        chain = MinimalAntichain([0b001, 0b010, 0b100])
        assert len(chain) == 3

    def test_contains_subset_of(self):
        chain = MinimalAntichain([0b011])
        assert chain.contains_subset_of(0b011)
        assert chain.contains_subset_of(0b111)
        assert not chain.contains_subset_of(0b001)
        assert not chain.contains_subset_of(0b100)

    def test_empty_mask_member(self):
        chain = MinimalAntichain([0])
        assert chain.contains_subset_of(0)
        assert chain.contains_subset_of(0b101)
        assert chain.masks() == {0}
        assert not chain.add(0b1)

    def test_supersets_and_subsets_queries(self):
        chain = MinimalAntichain([0b001, 0b110])
        assert sorted(chain.supersets_of(0b001)) == [0b001]
        assert chain.supersets_of(0b010) == [0b110]
        assert chain.supersets_of(0b1000) == []
        assert sorted(chain.subsets_of(0b111)) == [0b001, 0b110]

    def test_discard(self):
        chain = MinimalAntichain([0b001])
        assert chain.discard(0b001)
        assert not chain.discard(0b001)
        assert len(chain) == 0
        assert not chain.contains_subset_of(0b111)


class TestMaximalAntichain:
    def test_add_keeps_maximal(self):
        chain = MaximalAntichain()
        assert chain.add(0b011)
        assert not chain.add(0b001)  # subset: rejected
        assert chain.add(0b111)  # superset: evicts 0b011
        assert chain.masks() == {0b111}

    def test_contains_superset_of(self):
        chain = MaximalAntichain([0b011])
        assert chain.contains_superset_of(0b001)
        assert chain.contains_superset_of(0b011)
        assert chain.contains_superset_of(0)
        assert not chain.contains_superset_of(0b100)

    def test_empty_query_on_empty_chain(self):
        chain = MaximalAntichain()
        assert not chain.contains_superset_of(0)
        assert not chain.contains_subset_of(0b1)


class TestAgainstReference:
    """The containers must agree with the pure minimize()/maximize()."""

    def test_random_streams(self):
        for seed in range(30):
            rng = random.Random(seed)
            masks = [rng.randrange(1 << 8) for _ in range(60)]
            minimal = MinimalAntichain()
            maximal = MaximalAntichain()
            for mask in masks:
                minimal.add(mask)
                maximal.add(mask)
            assert sorted(minimal.masks()) == sorted(minimize(masks))
            assert sorted(maximal.masks()) == sorted(maximize(masks))

    def test_random_queries(self):
        for seed in range(20):
            rng = random.Random(100 + seed)
            members = [rng.randrange(1, 1 << 8) for _ in range(25)]
            minimal = MinimalAntichain(members)
            snapshot = minimal.masks()
            for _ in range(50):
                probe = rng.randrange(1 << 8)
                expected_sub = any(is_subset(m, probe) for m in snapshot)
                expected_super = any(is_subset(probe, m) for m in snapshot)
                assert minimal.contains_subset_of(probe) == expected_sub
                assert minimal.contains_superset_of(probe) == expected_super


def test_sorted_masks_order():
    assert sorted_masks([0b111, 0b1, 0b10, 0b11]) == [0b1, 0b10, 0b11, 0b111]
