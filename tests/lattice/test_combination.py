"""Unit tests for bitmask column-combination operations."""

import pytest

from repro.errors import UnknownColumnError
from repro.lattice.combination import (
    ColumnCombination,
    columns_of,
    full_mask,
    immediate_subsets,
    immediate_supersets,
    is_proper_subset,
    is_subset,
    iter_bits,
    mask_of,
    maximize,
    minimize,
    popcount,
)

NAMES = ["a", "b", "c", "d"]


class TestMaskOps:
    def test_mask_of_roundtrip(self):
        assert mask_of([0, 2]) == 0b101
        assert columns_of(0b101) == (0, 2)
        assert columns_of(0) == ()

    def test_mask_of_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_of([-1])

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b1011)) == [0, 1, 3]

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_subset_relations(self):
        assert is_subset(0b001, 0b011)
        assert is_subset(0b011, 0b011)
        assert not is_subset(0b100, 0b011)
        assert is_proper_subset(0b001, 0b011)
        assert not is_proper_subset(0b011, 0b011)

    def test_empty_is_subset_of_everything(self):
        assert is_subset(0, 0)
        assert is_subset(0, 0b111)

    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(3) == 0b111
        with pytest.raises(ValueError):
            full_mask(-1)

    def test_immediate_neighbours(self):
        assert sorted(immediate_supersets(0b001, 0b111)) == [0b011, 0b101]
        assert sorted(immediate_subsets(0b011)) == [0b001, 0b010]
        assert list(immediate_subsets(0)) == []

    def test_minimize(self):
        assert sorted(minimize([0b111, 0b011, 0b100, 0b011])) == [0b011, 0b100]

    def test_minimize_keeps_incomparable(self):
        masks = [0b001, 0b010, 0b100]
        assert sorted(minimize(masks)) == masks

    def test_maximize(self):
        assert sorted(maximize([0b001, 0b011, 0b100, 0b011])) == [0b011, 0b100]

    def test_minimize_empty_mask_dominates(self):
        assert minimize([0b101, 0, 0b1]) == [0]


class TestColumnCombination:
    def test_of_names(self):
        combo = ColumnCombination.of(["a", "c"], NAMES)
        assert combo.mask == 0b101
        assert combo.names == ("a", "c")
        assert combo.indices == (0, 2)

    def test_of_unknown_name(self):
        with pytest.raises(UnknownColumnError):
            ColumnCombination.of(["z"], NAMES)

    def test_mask_beyond_names_rejected(self):
        with pytest.raises(ValueError):
            ColumnCombination(0b10000, NAMES)

    def test_membership(self):
        combo = ColumnCombination(0b101, NAMES)
        assert "a" in combo
        assert 2 in combo
        assert "b" not in combo
        assert 3 not in combo
        assert object() not in combo

    def test_set_algebra(self):
        left = ColumnCombination(0b011, NAMES)
        right = ColumnCombination(0b110, NAMES)
        assert left.union(right).mask == 0b111
        assert left.intersection(right).mask == 0b010
        assert left.difference(right).mask == 0b001
        assert left.with_column(3).mask == 0b1011

    def test_subset_predicates(self):
        small = ColumnCombination(0b001, NAMES)
        big = ColumnCombination(0b011, NAMES)
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)

    def test_equality_and_hash_by_mask(self):
        one = ColumnCombination(0b011, NAMES)
        two = ColumnCombination.of(["a", "b"], NAMES)
        assert one == two
        assert hash(one) == hash(two)
        assert len({one, two}) == 1

    def test_ordering_by_size_then_mask(self):
        combos = [
            ColumnCombination(0b110, NAMES),
            ColumnCombination(0b001, NAMES),
            ColumnCombination(0b011, NAMES),
        ]
        assert sorted(combos) == [combos[1], combos[2], combos[0]]

    def test_iteration_and_len(self):
        combo = ColumnCombination(0b101, NAMES)
        assert list(combo) == ["a", "c"]
        assert len(combo) == 2

    def test_repr_uses_names(self):
        assert repr(ColumnCombination(0b101, NAMES)) == "{a, c}"
