"""Unit tests for lattice enumeration utilities."""

import pytest

from repro.lattice.enumeration import (
    apriori_gen,
    downset,
    is_antichain,
    level,
    upset,
)


class TestLevel:
    def test_level_counts(self):
        assert len(list(level(5, 2))) == 10
        assert list(level(3, 0)) == [0]
        assert sorted(level(3, 3)) == [0b111]

    def test_level_masks_have_right_size(self):
        assert all(mask.bit_count() == 2 for mask in level(6, 2))


class TestAprioriGen:
    def test_joins_and_prunes(self):
        # non-uniques of level 1: {a}, {b}, {c}
        candidates = apriori_gen([0b001, 0b010, 0b100], 2)
        assert sorted(candidates) == [0b011, 0b101, 0b110]

    def test_prunes_candidates_with_missing_subset(self):
        # {a,b} and {a,c} join to {a,b,c}, but {b,c} is missing
        candidates = apriori_gen([0b011, 0b101], 3)
        assert candidates == []

    def test_complete_previous_level(self):
        candidates = apriori_gen([0b011, 0b101, 0b110], 3)
        assert candidates == [0b111]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            apriori_gen([0b1], 1)


class TestClosures:
    def test_downset(self):
        assert downset([0b011]) == {0b000, 0b001, 0b010, 0b011}

    def test_downset_always_contains_empty(self):
        assert downset([]) == {0}

    def test_upset(self):
        assert upset([0b10], 2) == {0b10, 0b11}

    def test_upset_of_empty_mask_is_everything(self):
        assert upset([0], 2) == {0b00, 0b01, 0b10, 0b11}


class TestIsAntichain:
    def test_positive(self):
        assert is_antichain([0b011, 0b101, 0b110])
        assert is_antichain([])

    def test_negative(self):
        assert not is_antichain([0b001, 0b011])
        assert not is_antichain([0b011, 0b001])
