"""Unit tests for the UGraph/NUGraph classification index."""

import pytest

from repro.errors import InconsistentProfileError
from repro.lattice.graphs import CombinationGraph


class TestClassification:
    def test_empty_graph_knows_nothing(self):
        graph = CombinationGraph()
        assert graph.classify(0b101) is None

    def test_unique_implies_supersets(self):
        graph = CombinationGraph(uniques=[0b001])
        assert graph.implies_unique(0b001)
        assert graph.implies_unique(0b011)
        assert not graph.implies_unique(0b010)
        assert graph.classify(0b101) is True

    def test_non_unique_implies_subsets(self):
        graph = CombinationGraph(non_uniques=[0b011])
        assert graph.implies_non_unique(0b011)
        assert graph.implies_non_unique(0b001)
        assert graph.implies_non_unique(0)
        assert not graph.implies_non_unique(0b111)
        assert graph.classify(0b010) is False

    def test_conflicting_unique_rejected(self):
        graph = CombinationGraph(non_uniques=[0b011])
        with pytest.raises(InconsistentProfileError):
            graph.add_unique(0b001)

    def test_conflicting_non_unique_rejected(self):
        graph = CombinationGraph(uniques=[0b001])
        with pytest.raises(InconsistentProfileError):
            graph.add_non_unique(0b011)

    def test_border_extraction(self):
        graph = CombinationGraph()
        graph.add_unique(0b111)
        graph.add_unique(0b011)
        graph.add_non_unique(0b001)
        graph.add_non_unique(0b100)
        assert graph.minimal_uniques() == [0b011]
        assert graph.maximal_non_uniques() == [0b001, 0b100]

    def test_repr(self):
        graph = CombinationGraph(uniques=[0b1], non_uniques=[0b10])
        assert "uniques=1" in repr(graph)
