"""Unit tests for minimal hitting sets and the MUCS <-> MNUCS duality."""

import random
from itertools import combinations

from repro.lattice.combination import full_mask, is_subset, mask_of
from repro.lattice.transversal import (
    minimal_hitting_sets,
    minimal_unique_supersets,
    mnucs_from_mucs,
    mucs_from_mnucs,
)


def brute_force_hitting_sets(edges: list[int], n_vertices: int) -> list[int]:
    """Reference implementation: scan all 2^n vertex sets."""
    hitting = [
        mask
        for mask in range(1 << n_vertices)
        if all(mask & edge for edge in edges)
    ]
    minimal = [
        mask
        for mask in hitting
        if not any(other != mask and is_subset(other, mask) for other in hitting)
    ]
    return sorted(minimal)


class TestMinimalHittingSets:
    def test_no_edges(self):
        assert minimal_hitting_sets([]) == [0]

    def test_empty_edge_unhittable(self):
        assert minimal_hitting_sets([0b101, 0]) == []

    def test_single_edge(self):
        assert sorted(minimal_hitting_sets([0b101])) == [0b001, 0b100]

    def test_classic_example(self):
        # edges {a,b}, {b,c}: minimal transversals {b}, {a,c}
        edges = [mask_of([0, 1]), mask_of([1, 2])]
        assert sorted(minimal_hitting_sets(edges)) == [0b010, 0b101]

    def test_duplicate_and_superset_edges_ignored(self):
        assert minimal_hitting_sets([0b01, 0b01, 0b11]) == [0b01]

    def test_universe_restriction(self):
        # Without vertex 1, edge {0,1} must be hit through vertex 0.
        edges = [0b011, 0b110]
        result = minimal_hitting_sets(edges, universe=0b101)
        assert result == [0b101]

    def test_universe_making_unhittable(self):
        assert minimal_hitting_sets([0b010], universe=0b101) == []

    def test_against_bruteforce_random(self):
        for seed in range(40):
            rng = random.Random(seed)
            n_vertices = rng.randint(1, 8)
            edges = [
                rng.randrange(1, 1 << n_vertices)
                for _ in range(rng.randint(1, 10))
            ]
            expected = brute_force_hitting_sets(edges, n_vertices)
            assert sorted(minimal_hitting_sets(edges)) == expected, (seed, edges)

    def test_output_is_exact_cover_free(self):
        # every result hits every edge and is minimal
        edges = [0b0111, 0b1100, 0b1010]
        for result in minimal_hitting_sets(edges):
            assert all(result & edge for edge in edges)
            for bit in range(4):
                smaller = result & ~(1 << bit)
                if smaller != result:
                    assert not all(smaller & edge for edge in edges)


class TestDuality:
    def test_simple_roundtrip(self):
        mucs = [0b001, 0b110]
        mnucs = mnucs_from_mucs(mucs, 3)
        assert sorted(mucs_from_mnucs(mnucs, 3)) == sorted(mucs)

    def test_paper_example(self):
        # Table I: MUCS {Phone}, {Name, Age} with columns (Name, Phone, Age)
        mucs = [0b010, 0b101]
        assert sorted(mnucs_from_mucs(mucs, 3)) == [0b001, 0b100]

    def test_no_mucs_means_everything_non_unique(self):
        assert mnucs_from_mucs([], 3) == [0b111]

    def test_empty_combination_unique(self):
        # <= 1 row: the empty combination is the only MUC, nothing is
        # non-unique.
        assert mnucs_from_mucs([0], 3) == []
        assert mucs_from_mnucs([], 3) == [0]

    def test_roundtrip_random_antichains(self):
        for seed in range(30):
            rng = random.Random(seed)
            n_columns = rng.randint(1, 7)
            universe = full_mask(n_columns)
            raw = {rng.randrange(1, universe + 1) for _ in range(rng.randint(1, 8))}
            mucs = sorted(
                mask
                for mask in raw
                if not any(other != mask and is_subset(other, mask) for other in raw)
            )
            mnucs = mnucs_from_mucs(mucs, n_columns)
            assert sorted(mucs_from_mnucs(mnucs, n_columns)) == mucs
            # every MNUC contains no MUC; every non-member superset does
            for mnuc in mnucs:
                assert not any(is_subset(muc, mnuc) for muc in mucs)


class TestMinimalUniqueSupersets:
    def test_example(self):
        # base {0}, pairs agreeing on {0,1} and {0,2} within 4 columns:
        # a unique superset must escape both agree sets.
        result = sorted(minimal_unique_supersets(0b0001, [0b0011, 0b0101], 4))
        # adding column 3 escapes both; adding columns 1 and 2 together
        # escapes the other pair's agree set each.
        assert result == [0b0111, 0b1001]

    def test_identical_tuples_kill_all_supersets(self):
        assert list(minimal_unique_supersets(0b01, [0b11], 2)) == []

    def test_exhaustive_check(self):
        base = 0b001
        agree_sets = [0b011, 0b101, 0b111 & 0b011]
        results = set(minimal_unique_supersets(base, agree_sets, 3))
        for mask in range(8):
            if not is_subset(base, mask):
                continue
            unique = all(not is_subset(mask, agree) for agree in agree_sets)
            minimal = unique and all(
                any(is_subset(mask & ~(1 << bit), agree) for agree in agree_sets)
                for bit in range(3)
                if (mask >> bit & 1) and not (base >> bit & 1)
            )
            assert (mask in results) == (unique and minimal), mask
