"""Per-rule fixture snippets: one positive and one negative per rule."""

import textwrap

import pytest

from repro.lint import ModuleFile
from repro.lint.rules import all_rules
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.fanout_capture import FanoutCaptureRule
from repro.lint.rules.frozen_views import FrozenViewsRule
from repro.lint.rules.live_escape import LiveEscapeRule
from repro.lint.rules.locks_metrics import LocksMetricsRule
from repro.lint.rules.raw_io import RawIoRule


def run_rule(rule_cls, source, module="repro.storage.pli", options=None):
    parsed = ModuleFile.parse(
        "src/" + module.replace(".", "/") + ".py",
        module,
        textwrap.dedent(source),
    )
    rule = rule_cls(options or {})
    return list(rule.check(parsed)) + list(rule.finalize([parsed]))


class TestRegistry:
    def test_all_nine_rules_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert ids == {
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        }

    def test_rules_carry_catalog_metadata(self):
        for rule in all_rules():
            assert rule.name
            assert rule.description
            assert rule.default_scope
            assert rule.default_severity in ("error", "warning")


class TestR1RawIo:
    def test_flags_raw_open_and_replace(self):
        findings = run_rule(
            RawIoRule,
            """
            import os

            def publish(path, data):
                with open(path + ".tmp", "w") as handle:
                    handle.write(data)
                os.replace(path + ".tmp", path)
            """,
            module="repro.service.metrics",
        )
        assert {f.rule for f in findings} == {"R1"}
        assert len(findings) == 2

    def test_fsops_routed_code_passes(self):
        findings = run_rule(
            RawIoRule,
            """
            from repro.faults import fsops

            SITE = fsops.register_site("x.open", "d")

            def publish(path, data):
                with fsops.open_(SITE, path, "w") as handle:
                    fsops.write(SITE, handle, data)
                fsops.replace(SITE, path + ".tmp", path)
            """,
            module="repro.service.metrics",
        )
        assert findings == []

    def test_write_text_method_flagged(self):
        findings = run_rule(
            RawIoRule,
            """
            def publish(path, data):
                path.write_text(data)
            """,
            module="repro.service.snapshots",
        )
        assert len(findings) == 1


class TestR2FrozenViews:
    def test_unfrozen_module_constant_flagged(self):
        findings = run_rule(
            FrozenViewsRule,
            """
            import numpy as np

            _EMPTY = np.empty(0, dtype=np.int64)
            """,
            module="repro.storage.value_index",
        )
        assert len(findings) == 1
        assert "frozen" in findings[0].message

    def test_frozen_module_constant_passes(self):
        findings = run_rule(
            FrozenViewsRule,
            """
            import numpy as np

            _EMPTY = np.empty(0, dtype=np.int64)
            _EMPTY.flags.writeable = False
            """,
            module="repro.storage.value_index",
        )
        assert findings == []

    def test_consumer_mutating_lookup_result_flagged(self):
        findings = run_rule(
            FrozenViewsRule,
            """
            def probe(index, value):
                posting = index.lookup_array(value)
                posting.sort()
                return posting
            """,
            module="repro.storage.value_index",
        )
        assert any("lookup" in f.message or "mutat" in f.message for f in findings)

    def test_consumer_copy_then_mutate_passes(self):
        findings = run_rule(
            FrozenViewsRule,
            """
            def probe(index, value):
                posting = index.lookup_array(value).copy()
                posting.sort()
                return posting
            """,
            module="repro.storage.value_index",
        )
        assert findings == []


class TestR3LiveEscape:
    def test_returning_maintained_attr_flagged(self):
        findings = run_rule(
            LiveEscapeRule,
            """
            class Index:
                def postings(self):
                    return self._entries
            """,
            module="repro.storage.value_index",
        )
        assert len(findings) == 1

    def test_returning_copy_passes(self):
        findings = run_rule(
            LiveEscapeRule,
            """
            class Index:
                def postings(self):
                    return dict(self._entries)
            """,
            module="repro.storage.value_index",
        )
        assert findings == []

    def test_scalar_return_annotation_exempt(self):
        findings = run_rule(
            LiveEscapeRule,
            """
            class Index:
                def cluster_of(self, tuple_id: int) -> int | None:
                    return self._membership.get(tuple_id)
            """,
            module="repro.storage.pli",
        )
        assert findings == []

    def test_taint_flows_through_aliases(self):
        findings = run_rule(
            LiveEscapeRule,
            """
            def leak(column_plis):
                first = column_plis[0]
                alias = first
                return alias
            """,
            module="repro.storage.pli",
        )
        assert len(findings) == 1


class TestR4Determinism:
    def test_random_and_wallclock_flagged(self):
        findings = run_rule(
            DeterminismRule,
            """
            import random
            import time

            def jitter():
                return random.random() + time.time()
            """,
            module="repro.core.inserts",
        )
        assert len(findings) >= 2

    def test_list_over_set_flagged(self):
        findings = run_rule(
            DeterminismRule,
            """
            def dedup(values):
                return list(set(values))
            """,
            module="repro.storage.value_index",
        )
        assert len(findings) == 1

    def test_sorted_and_fromkeys_pass(self):
        findings = run_rule(
            DeterminismRule,
            """
            def dedup(values):
                ordered = list(dict.fromkeys(values))
                ranked = sorted(set(values))
                return ordered, ranked
            """,
            module="repro.storage.value_index",
        )
        assert findings == []


class TestR5LocksMetrics:
    def test_flock_without_release_flagged(self):
        findings = run_rule(
            LocksMetricsRule,
            """
            import fcntl

            def grab(path):
                handle = open(path, "a+")
                fcntl.flock(handle, fcntl.LOCK_EX)
                return handle
            """,
            module="repro.service.server",
        )
        assert any(f.rule == "R5" for f in findings)

    def test_ownership_transfer_shape_passes(self):
        findings = run_rule(
            LocksMetricsRule,
            """
            import fcntl

            class Service:
                def _acquire_lock(self, path):
                    handle = open(path, "a+")  # reprolint: disable=R1
                    try:
                        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        handle.close()
                        raise
                    self._lock_handle = handle

                def _release_lock(self):
                    fcntl.flock(self._lock_handle, fcntl.LOCK_UN)
                    self._lock_handle.close()
            """,
            module="repro.service.server",
        )
        assert [f for f in findings if f.rule == "R5"] == []

    def test_metric_kind_conflict_flagged(self):
        findings = run_rule(
            LocksMetricsRule,
            """
            def observe(metrics):
                metrics.counter("batches").inc()
                metrics.gauge("batches").set(1)
            """,
            module="repro.service.server",
        )
        assert any("one name, one kind" in f.message for f in findings)

    def test_dynamic_metric_name_is_a_warning(self):
        findings = run_rule(
            LocksMetricsRule,
            """
            def observe(metrics, key):
                metrics.gauge(f"pli_cache_{key}").set(1)
            """,
            module="repro.service.server",
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"


class TestR6FanoutCapture:
    def test_closure_mutating_captured_local_flagged(self):
        findings = run_rule(
            FanoutCaptureRule,
            """
            class Handler:
                def fan_out(self, items):
                    results = []

                    def task(item):
                        results.append(item * 2)

                    self._pool.map(task, items)
                    return results
            """,
            module="repro.core.inserts",
        )
        assert len(findings) == 1
        assert "results" in findings[0].message

    def test_closure_returning_values_passes(self):
        findings = run_rule(
            FanoutCaptureRule,
            """
            class Handler:
                def fan_out(self, items):
                    def task(item):
                        local = item * 2
                        return local

                    return self._pool.map(task, items)
            """,
            module="repro.core.inserts",
        )
        assert findings == []

    def test_reads_of_captured_state_allowed(self):
        findings = run_rule(
            FanoutCaptureRule,
            """
            class Handler:
                def fan_out(self, items, profile):
                    def task(item):
                        return profile.score(item)

                    return self._pool.map(task, items)
            """,
            module="repro.core.inserts",
        )
        assert findings == []


class TestScopes:
    @pytest.mark.parametrize("rule_cls", [r for r in all_rules()])
    def test_rules_silent_on_out_of_scope_modules(self, rule_cls):
        # The engine scopes by module prefix; rule defaults must name
        # real prefixes so tests/tools/benchmarks stay un-linted by
        # domain rules.
        for prefix in rule_cls.default_scope:
            assert prefix.startswith("repro")
