"""R9 fork-safety: the PR 8 bug shape fails, registered classes pass."""

import pathlib
import textwrap

from repro.lint import ModuleFile
from repro.lint.rules.fork_safety import ForkSafetyRule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def run_rule(source, module="repro.storage.fake"):
    parsed = ModuleFile.parse(
        "src/" + module.replace(".", "/") + ".py",
        module,
        textwrap.dedent(source),
    )
    rule = ForkSafetyRule({})
    return list(rule.finalize([parsed]))


def run_fixture(name):
    path = FIXTURES / name
    parsed = ModuleFile.parse(
        f"tests/lint/fixtures/{name}",
        f"tests.lint.fixtures.{name.removesuffix('.py')}",
        path.read_text(),
    )
    rule = ForkSafetyRule({})
    return list(rule.finalize([parsed]))


class TestOwnershipInvariant:
    def test_pr8_fixture_fails_both_checks(self):
        findings = run_fixture("pr8_fork_lock_bug.py")
        assert {f.rule for f in findings} == {"R9"}
        messages = " ".join(f.message for f in findings)
        # The ownership invariant names the class...
        assert "PartitionCache" in messages
        assert "register_fork_owner" in messages
        # ...and the closure check catches the fan-out capture.
        assert any("captures" in f.message for f in findings)
        assert len(findings) == 2

    def test_registered_class_passes(self):
        findings = run_rule(
            """
            from repro.sanitize import make_lock, register_fork_owner

            class Cache:
                def __init__(self) -> None:
                    self._lock = make_lock("storage.cache")
                    register_fork_owner(self)

                def _reset_locks_after_fork(self) -> None:
                    self._lock = make_lock("storage.cache")
            """
        )
        assert findings == []

    def test_raw_threading_lock_without_registration_flagged(self):
        findings = run_rule(
            """
            import threading

            class Cache:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
            """
        )
        assert len(findings) == 1
        assert "Cache" in findings[0].message

    def test_lockless_class_needs_no_registration(self):
        findings = run_rule(
            """
            class Plain:
                def __init__(self) -> None:
                    self.items: list[str] = []
            """
        )
        assert findings == []


class TestClosureReachability:
    def test_capture_of_registered_class_passes(self):
        findings = run_rule(
            """
            from repro.sanitize import make_lock, register_fork_owner

            class Cache:
                def __init__(self) -> None:
                    self._lock = make_lock("storage.cache")
                    register_fork_owner(self)

                def _reset_locks_after_fork(self) -> None:
                    self._lock = make_lock("storage.cache")

                def get(self, mask: int) -> object:
                    return None

            def sweep(pool, cache: Cache, masks):
                def probe(mask):
                    return cache.get(mask)
                return pool.map(probe, masks)
            """
        )
        assert findings == []

    def test_capture_of_open_file_handle_flagged(self):
        findings = run_rule(
            """
            def sweep(pool, path, masks):
                handle = open(path)
                def probe(mask):
                    return handle.readline()
                return pool.map(probe, masks)
            """
        )
        assert len(findings) == 1
        assert "file handle" in findings[0].message

    def test_capture_of_live_generator_flagged(self):
        findings = run_rule(
            """
            def sweep(pool, masks):
                feed = (mask * 2 for mask in masks)
                def probe(mask):
                    return next(feed)
                return pool.map(probe, masks)
            """
        )
        assert len(findings) == 1
        assert "generator" in findings[0].message

    def test_capture_of_generator_function_call_flagged(self):
        findings = run_rule(
            """
            def stream(masks):
                for mask in masks:
                    yield mask

            def sweep(pool, masks):
                feed = stream(masks)
                def probe(mask):
                    return next(feed)
                return pool.map(probe, masks)
            """
        )
        assert len(findings) == 1
        assert "generator" in findings[0].message

    def test_plain_value_captures_pass(self):
        findings = run_rule(
            """
            def sweep(pool, masks, factor: int):
                def scale(mask):
                    return mask * factor
                return pool.map(scale, masks)
            """
        )
        assert findings == []
