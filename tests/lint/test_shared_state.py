"""R8 unsynchronized-shared-state: unguarded writes flagged, guarded pass."""

import textwrap

from repro.lint import ModuleFile
from repro.lint.rules.shared_state import SharedStateRule


def run_rule(source, shared=("Shared",), extra_options=None):
    parsed = ModuleFile.parse(
        "src/repro/tenants/fake.py",
        "repro.tenants.fake",
        textwrap.dedent(source),
    )
    options = {"shared_classes": list(shared), **(extra_options or {})}
    rule = SharedStateRule(options)
    return list(rule.finalize([parsed]))


GUARDED = """
    import threading

    class Shared:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.items: list[str] = []
            self.count = 0

        def add(self, item: str) -> None:
            with self._lock:
                self.items.append(item)
                self.count += 1
"""

UNGUARDED = """
    import threading

    class Shared:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.items: list[str] = []
            self.count = 0

        def add(self, item: str) -> None:
            self.items.append(item)
            self.count += 1
"""


class TestSharedState:
    def test_guarded_writes_pass(self):
        assert run_rule(GUARDED) == []

    def test_unguarded_writes_flagged(self):
        findings = run_rule(UNGUARDED)
        assert len(findings) == 2
        assert {f.rule for f in findings} == {"R8"}
        messages = " ".join(f.message for f in findings)
        assert "self.items" in messages
        assert "self.count" in messages

    def test_non_shared_class_ignored(self):
        assert run_rule(UNGUARDED, shared=("SomethingElse",)) == []

    def test_init_and_reset_and_locked_suffix_exempt(self):
        findings = run_rule(
            """
            import threading

            class Shared:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.items: list[str] = []

                def _reset_locks_after_fork(self) -> None:
                    self._lock = threading.Lock()

                def _drop_locked(self) -> None:
                    self.items.clear()
            """
        )
        assert findings == []

    def test_helper_called_only_under_lock_passes(self):
        findings = run_rule(
            """
            import threading

            class Shared:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.items: list[str] = []

                def add(self, item: str) -> None:
                    with self._lock:
                        self._push(item)

                def _push(self, item: str) -> None:
                    self.items.append(item)
            """
        )
        assert findings == []

    def test_helper_with_unlocked_call_site_flagged(self):
        findings = run_rule(
            """
            import threading

            class Shared:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.items: list[str] = []

                def add(self, item: str) -> None:
                    with self._lock:
                        self._push(item)

                def sneak(self, item: str) -> None:
                    self._push(item)

                def _push(self, item: str) -> None:
                    self.items.append(item)
            """
        )
        assert len(findings) == 1
        assert "_push" in findings[0].symbol

    def test_event_set_and_clear_are_not_writes(self):
        findings = run_rule(
            """
            import threading

            class Shared:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._stop = threading.Event()

                def stop(self) -> None:
                    self._stop.set()

                def reset(self) -> None:
                    self._stop.clear()
            """
        )
        assert findings == []

    def test_unguarded_attrs_option_exempts_with_rationale(self):
        findings = run_rule(
            UNGUARDED,
            extra_options={"unguarded_attrs": ["Shared.items", "Shared.count"]},
        )
        assert findings == []
