"""The PR 8 PartitionCache fork-lock bug, preserved as an R9 fixture.

This is the *pre-fix* shape of ``repro.storage.plicache`` (commit
``e19595a``), verbatim where it matters: the cache builds a bare
``threading.Lock()`` in its constructor with no at-fork handling. When
the process fan-out pool forked workers while a service thread held
this lock, the child inherited it in the locked state and deadlocked on
its first cache probe -- the bug PR 8 debugged and fixed with the
at-fork reset registry that :func:`repro.sanitize.register_fork_owner`
later generalized.

Rule R9 must flag this file twice: the ownership invariant (a
lock-owning class that never registers for at-fork reset) and the
closure check (a process fan-out task capturing that class). If R9
stops firing here, the gate has rotted; ``tools/check_concurrency_gate.py``
turns that into a CI failure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class PartitionCache:
    """Generation-tagged, byte-budgeted LRU cache of derived partitions."""

    def __init__(self, budget_bytes: int | None = None) -> None:
        self._budget = budget_bytes
        self._entries: "OrderedDict[tuple[str, int], object]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, mask: int, generation: int) -> object | None:
        with self._lock:
            return self._entries.get(("array", mask))


def delete_descent(pool, cache: PartitionCache, masks: list[int]) -> list[object]:
    """The delete handler's fan-out, capturing the unregistered cache."""

    def probe(mask: int) -> object:
        return cache.get(mask, 0)

    return pool.map(probe, masks)
