"""The PR 3 ``pli_for_combination`` aliasing bug, reconstructed verbatim.

This is the pre-fix shape of :func:`repro.storage.pli.pli_for_combination`:
when the cheapest column has no duplicates, the ``for`` loop breaks (or
never runs its body) before the first ``intersect``, and the function
returns ``current`` -- which still *is* the live maintained column PLI.
The caller's ``remove_ids`` then silently corrupted the maintained
index. R3 must flag the ``return current`` below; the fixed production
code (``current if derived else current.copy()``) must pass.

Linted only by tests/lint tests (the gate excludes this directory).
"""


def pli_for_combination(relation, mask, column_plis):
    columns = sorted(iter_bits(mask), key=lambda c: column_plis[c].n_entries())
    if not columns:
        ids = list(relation.iter_ids())
        return PositionListIndex.from_clusters([ids] if len(ids) >= 2 else [])
    current = column_plis[columns[0]]
    for column in columns[1:]:
        if not current.has_duplicates:
            break
        current = current.intersect(column_plis[column])
    return current
