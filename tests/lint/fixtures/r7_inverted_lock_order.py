"""A seeded lock-order inversion, preserved as the R7 deadlock fixture.

The shape mirrors the real queue-vs-manager layering: the manager
routes batches *down* into a queue while holding the manager lock (the
legitimate direction, exactly what ``TenantManager.submit`` does), and
the queue reports back *up* into the manager while holding the queue
lock. Each path is individually correct; together they form the cycle

    Manager._lock -> Queue._lock -> Manager._lock

which deadlocks the first time a submitting thread and a draining
thread interleave. R7 must report this cycle, and the runtime
sanitizer must raise :class:`repro.sanitize.LockOrderError` when the
same two paths are exercised under ``REPRO_SANITIZE=locks`` (see
``tests/sanitize/test_lock_order.py``). If R7 stops firing here,
``tools/check_concurrency_gate.py`` turns that into a CI failure.
"""

from __future__ import annotations

import threading
from collections import deque


class Manager:
    """Routes batches to queues; tracks per-queue depths."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.queues: dict[str, "Queue"] = {}
        self.depths: dict[str, int] = {}

    def submit(self, name: str, item: str) -> None:
        # Correct direction: manager lock, then queue lock.
        with self._lock:
            queue = self.queues[name]
            queue.put(item)

    def note_depth(self, name: str, depth: int) -> None:
        with self._lock:
            self.depths[name] = depth


class Queue:
    """One bounded queue that reports its depth back to the manager."""

    def __init__(self, name: str, manager: Manager) -> None:
        self.name = name
        self.manager = manager
        self._lock = threading.Lock()
        self._items: deque[str] = deque()

    def put(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def take(self) -> str:
        # Inverted direction: queue lock held while calling back up
        # into the manager, which takes the manager lock.
        with self._lock:
            item = self._items.popleft()
            self.manager.note_depth(self.name, len(self._items))
            return item
