"""Satellite regression: R3 vs the PR 3 aliasing bug, both directions.

The fixture ``fixtures/pr3_aliasing_bug.py`` reconstructs the buggy
``pli_for_combination`` verbatim; the live ``src/repro/storage/pli.py``
carries the fix (``current if derived else current.copy()``). The rule
must flag the former and stay silent on the latter -- that asymmetry is
the whole point of the rule.
"""

import os

from repro.lint import LintConfig, ModuleFile, run_lint
from repro.lint.rules.live_escape import LiveEscapeRule

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "pr3_aliasing_bug.py")
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def _lint_as_pli(source: str) -> list:
    module = ModuleFile.parse(
        "src/repro/storage/pli.py", "repro.storage.pli", source
    )
    return list(LiveEscapeRule({}).check(module))


class TestBugVersionIsFlagged:
    def test_fixture_triggers_r3(self):
        with open(FIXTURE) as handle:
            findings = _lint_as_pli(handle.read())
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "R3"
        assert finding.symbol == "pli_for_combination"
        assert "alias" in finding.message

    def test_fixture_fails_an_end_to_end_run(self, tmp_path):
        # Reintroduce the bug as a real source tree: the gate must fail.
        target = tmp_path / "src" / "repro" / "storage"
        target.mkdir(parents=True)
        with open(FIXTURE) as handle:
            (target / "pli.py").write_text(handle.read())
        result = run_lint(["src"], str(tmp_path), LintConfig(baseline=None))
        assert not result.ok
        assert any(f.rule == "R3" for f in result.findings)


class TestFixedVersionPasses:
    def test_live_pli_module_is_clean(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "storage", "pli.py")
        with open(path) as handle:
            findings = _lint_as_pli(handle.read())
        assert findings == []

    def test_guarded_copy_idiom_accepted(self):
        # The minimal fixed shape: the aliasing decision is explicit.
        findings = _lint_as_pli(
            "def pli_for_combination(column_plis, mask):\n"
            "    derived = False\n"
            "    current = column_plis[0]\n"
            "    for column in [1, 2]:\n"
            "        current = current.intersect(column_plis[column])\n"
            "        derived = True\n"
            "    result = current if derived else current.copy()\n"
            "    return result\n"
        )
        assert findings == []
