"""Engine/CLI behaviour: baselines, JSON schema, config, suppressions."""

import json

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint import config as config_module
from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.config import parse_config
from repro.lint.engine import SCHEMA_VERSION, module_name_for

# A one-liner that trips R1 inside its default scope.
VIOLATION = 'def publish(path):\n    return open(path).read()\n'


def write_tree(root, source=VIOLATION, pyproject=""):
    target = root / "src" / "repro" / "service"
    target.mkdir(parents=True)
    (target / "metrics.py").write_text(source)
    (root / "pyproject.toml").write_text(pyproject)
    return root


class TestModuleNames:
    @pytest.mark.parametrize(
        ("relpath", "expected"),
        [
            ("src/repro/storage/pli.py", "repro.storage.pli"),
            ("src/repro/lint/__init__.py", "repro.lint"),
            ("tests/core/test_swan.py", "tests.core.test_swan"),
            ("tools/make_dataset.py", "tools.make_dataset"),
        ],
    )
    def test_module_name_for(self, relpath, expected):
        assert module_name_for(relpath) == expected


class TestBaselineRoundTrip:
    def test_grandfather_then_fix_goes_stale(self, tmp_path):
        write_tree(tmp_path)
        config = LintConfig(baseline=None)

        # 1. The violation is live.
        result = run_lint(["src"], str(tmp_path), config)
        assert not result.ok
        assert len(result.findings) == 1

        # 2. Grandfather it; the run goes clean but still reports it.
        baseline = Baseline(path=str(tmp_path / "baseline.json"))
        for finding in result.findings:
            baseline.add(finding)
        baseline.save()
        reloaded = Baseline.load(str(tmp_path / "baseline.json"))
        assert len(reloaded) == 1

        result = run_lint(["src"], str(tmp_path), config, baseline=reloaded)
        assert result.ok
        assert result.findings == []
        assert len(result.baselined) == 1
        assert result.stale_baseline_entries == []

        # 3. Fingerprints are line-independent: shifting the code keeps
        #    the entry matched.
        shifted = "# a new leading comment\n\n" + VIOLATION
        (tmp_path / "src" / "repro" / "service" / "metrics.py").write_text(shifted)
        result = run_lint(["src"], str(tmp_path), config, baseline=reloaded)
        assert result.ok and len(result.baselined) == 1

        # 4. Fix the code: the entry goes stale and is reported.
        (tmp_path / "src" / "repro" / "service" / "metrics.py").write_text(
            "def publish(path):\n    return path\n"
        )
        result = run_lint(["src"], str(tmp_path), config, baseline=reloaded)
        assert result.ok
        assert result.baselined == []
        assert len(result.stale_baseline_entries) == 1
        assert result.stale_baseline_entries[0].startswith("R1::")

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported version"):
            Baseline.load(str(path))


class TestJsonSchema:
    def test_to_dict_shape(self, tmp_path):
        write_tree(tmp_path)
        result = run_lint(["src"], str(tmp_path), LintConfig(baseline=None))
        document = result.to_dict()
        assert document["version"] == SCHEMA_VERSION
        assert document["files_scanned"] == 1
        assert document["parse_errors"] == []
        assert document["summary"] == {
            "errors": 1,
            "warnings": 0,
            "baselined": 0,
            "suppressed": 0,
        }
        (finding,) = document["findings"]
        assert set(finding) >= {
            "rule", "name", "severity", "path", "line", "col",
            "symbol", "message",
        }
        assert finding["rule"] == "R1"
        assert finding["path"] == "src/repro/service/metrics.py"
        # The whole document must be JSON-serialisable as-is.
        json.loads(json.dumps(document))


class TestInlineSuppressions:
    def run(self, tmp_path, source):
        write_tree(tmp_path, source=source)
        return run_lint(["src"], str(tmp_path), LintConfig(baseline=None))

    def test_disable_same_line(self, tmp_path):
        result = self.run(
            tmp_path,
            "def publish(path):\n"
            "    return open(path).read()  # reprolint: disable=R1\n",
        )
        assert result.ok and result.suppressed == 1

    def test_disable_next_line(self, tmp_path):
        result = self.run(
            tmp_path,
            "def publish(path):\n"
            "    # reprolint: disable-next=R1\n"
            "    return open(path).read()\n",
        )
        assert result.ok and result.suppressed == 1

    def test_skip_file(self, tmp_path):
        result = self.run(
            tmp_path,
            "# reprolint: skip-file\n" + VIOLATION,
        )
        assert result.ok and result.findings == []

    def test_disable_for_other_rule_does_not_apply(self, tmp_path):
        result = self.run(
            tmp_path,
            "def publish(path):\n"
            "    return open(path).read()  # reprolint: disable=R4\n",
        )
        assert not result.ok and result.suppressed == 0


class TestConfig:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_config({"basline": "oops.json"})

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            parse_config({"rules": {"R1": {"severity": "fatal"}}})

    def test_exclude_must_be_string_list(self):
        with pytest.raises(ValueError, match="list of strings"):
            parse_config({"exclude": "tests/lint"})

    def test_rule_scope_override(self, tmp_path):
        write_tree(tmp_path)
        config = parse_config(
            {"baseline": None, "rules": {"r1": {"include": ["nothing.here"]}}}
        )
        result = run_lint(["src"], str(tmp_path), config)
        assert result.ok and result.findings == []

    def test_exclude_modules_punches_hole(self, tmp_path):
        write_tree(tmp_path)
        config = parse_config(
            {
                "baseline": None,
                "rules": {"R1": {"exclude_modules": ["repro.service.metrics"]}},
            }
        )
        result = run_lint(["src"], str(tmp_path), config)
        assert result.ok

    def test_severity_override_never_downgrades_rule_warnings(self, tmp_path):
        # R5's dynamic-metric-name advisory is emitted as a warning by
        # the rule itself; a config severity=error must not touch it.
        write_tree(
            tmp_path,
            source=(
                "def observe(metrics, key):\n"
                '    metrics.gauge(f"pli_cache_{key}").set(1)\n'
            ),
        )
        config = parse_config({"baseline": None, "rules": {"R5": {"severity": "error"}}})
        result = run_lint(["src"], str(tmp_path), config)
        assert result.ok
        assert [f.severity for f in result.findings] == ["warning"]

    def test_disabling_a_rule(self, tmp_path):
        write_tree(tmp_path)
        config = parse_config({"baseline": None, "rules": {"R1": {"enabled": False}}})
        result = run_lint(["src"], str(tmp_path), config)
        assert result.ok

    @pytest.mark.skipif(
        config_module.tomllib is None, reason="tomllib needs Python 3.11+"
    )
    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint]\nbaseline = "b.json"\nexclude = ["x/"]\n'
        )
        config = config_module.load_config(str(tmp_path / "pyproject.toml"))
        assert config.baseline == "b.json"
        assert config.excludes_path("x/y.py")

    def test_load_config_defaults_when_file_missing(self, tmp_path):
        config = config_module.load_config(str(tmp_path / "nope.toml"))
        assert config.baseline == "tools/reprolint-baseline.json"


class TestCli:
    def test_exit_one_on_findings_and_json_output(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(["--root", str(tmp_path), "--format", "json", "src"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 1

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        write_tree(tmp_path, source="def publish(path):\n    return path\n")
        code = main(["--root", str(tmp_path), "src"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_one_on_syntax_error(self, tmp_path, capsys):
        write_tree(tmp_path, source="def broken(:\n")
        code = main(["--root", str(tmp_path), "src"])
        assert code == 1
        assert "parse error" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(["--root", str(tmp_path), "--select", "R42", "src"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_two_on_missing_paths(self, tmp_path, capsys):
        write_tree(tmp_path)
        code = main(["--root", str(tmp_path), "no_such_dir"])
        assert code == 2

    @pytest.mark.skipif(
        config_module.tomllib is None, reason="tomllib needs Python 3.11+"
    )
    def test_exit_two_on_bad_config(self, tmp_path, capsys):
        write_tree(
            tmp_path, pyproject="[tool.reprolint]\nnot_a_key = 1\n"
        )
        code = main(["--root", str(tmp_path), "src"])
        assert code == 2
        assert "bad configuration" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path):
        write_tree(tmp_path)
        assert main(["--root", str(tmp_path), "--select", "R4", "src"]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline),
             "--write-baseline", "src"]
        )
        assert code == 0
        assert json.loads(baseline.read_text())["entries"]

        code = main(["--root", str(tmp_path), "--baseline", str(baseline), "src"])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

        # --no-baseline re-arms the finding.
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline),
             "--no-baseline", "src"]
        )
        assert code == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in out
