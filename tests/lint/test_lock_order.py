"""R7 lock-order: cycles flagged, layered orders pass, aliases fold."""

import pathlib
import textwrap

from repro.lint import ModuleFile
from repro.lint.rules.lock_order import LockOrderRule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def run_rule(source, module="repro.tenants.fake", options=None):
    parsed = ModuleFile.parse(
        "src/" + module.replace(".", "/") + ".py",
        module,
        textwrap.dedent(source),
    )
    rule = LockOrderRule(options or {})
    return list(rule.finalize([parsed]))


def run_fixture(name, options=None):
    path = FIXTURES / name
    parsed = ModuleFile.parse(
        f"tests/lint/fixtures/{name}",
        f"tests.lint.fixtures.{name.removesuffix('.py')}",
        path.read_text(),
    )
    rule = LockOrderRule(options or {})
    return list(rule.finalize([parsed]))


LAYERED = """
    import threading

    class Manager:
        def __init__(self) -> None:
            self._lock = threading.RLock()
            self.queues: dict[str, "Queue"] = {}

        def submit(self, name: str, item: str) -> None:
            with self._lock:
                queue = self.queues[name]
                queue.put(item)

    class Queue:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._items: list[str] = []

        def put(self, item: str) -> None:
            with self._lock:
                self._items.append(item)

        def take(self) -> str:
            with self._lock:
                return self._items.pop(0)
"""


class TestLockOrder:
    def test_consistent_layering_passes(self):
        assert run_rule(LAYERED) == []

    def test_seeded_inversion_fixture_flagged(self):
        findings = run_fixture("r7_inverted_lock_order.py")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "R7"
        assert "Manager._lock" in finding.message
        assert "Queue._lock" in finding.message
        assert "cycle" in finding.message

    def test_lexical_nested_inversion_flagged(self):
        findings = run_rule(
            """
            import threading

            class Pair:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self) -> None:
                    with self._a:
                        with self._b:
                            pass

                def backward(self) -> None:
                    with self._b:
                        with self._a:
                            pass
            """
        )
        assert len(findings) == 1
        assert "Pair._a" in findings[0].message
        assert "Pair._b" in findings[0].message

    def test_alias_folds_shared_lock_to_one_node(self):
        # worker.lock IS tenant.lock at runtime: without the alias the
        # two attribute names would hide a (reentrant, legal) pattern
        # or manufacture a bogus two-node cycle.
        source = """
            import threading

            class Tenant:
                def __init__(self) -> None:
                    self.lock = threading.RLock()
                    self.worker = Worker(self.lock)

                def pause(self) -> None:
                    with self.lock:
                        self.worker.drain()

            class Worker:
                def __init__(self, lock: threading.RLock) -> None:
                    self.lock = lock

                def drain(self) -> None:
                    with self.lock:
                        pass
            """
        aliased = run_rule(
            source, options={"aliases": {"Worker.lock": "Tenant.lock"}}
        )
        assert aliased == []

    def test_condition_acquisitions_count_as_their_lock(self):
        findings = run_rule(
            """
            import threading

            class Queue:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)

                class_level = None

                def wait(self, other: "Other") -> None:
                    with self._not_empty:
                        other.touch()

            class Other:
                def __init__(self, queue: Queue) -> None:
                    self._lock = threading.Lock()
                    self.queue = queue

                def touch(self) -> None:
                    with self._lock:
                        pass

                def reach_back(self) -> None:
                    with self._lock:
                        self.queue.wait(self)
            """
        )
        assert len(findings) == 1
        assert "Queue._lock" in findings[0].message

    def test_interprocedural_cycle_through_call_chain(self):
        # Neither function nests two ``with`` blocks; the cycle only
        # exists through the call graph.
        findings = run_fixture("r7_inverted_lock_order.py")
        (finding,) = findings
        assert "->" in finding.message
