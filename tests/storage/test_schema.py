"""Unit tests for schemas and column resolution."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.storage.schema import Column, Schema, schema_of


class TestColumn:
    def test_defaults(self):
        column = Column("name")
        assert column.dtype == "str"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")


class TestSchema:
    def test_from_strings(self):
        schema = Schema(["a", "b"])
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "a"])

    def test_index_of_name_and_int(self):
        schema = Schema(["a", "b", "c"])
        assert schema.index_of("b") == 1
        assert schema.index_of(2) == 2

    def test_index_of_unknown(self):
        schema = Schema(["a"])
        with pytest.raises(UnknownColumnError):
            schema.index_of("z")
        with pytest.raises(UnknownColumnError):
            schema.index_of(5)

    def test_mask_mixed_references(self):
        schema = Schema(["a", "b", "c"])
        assert schema.mask(["a", 2]) == 0b101

    def test_combination_from_mask_and_columns(self):
        schema = Schema(["a", "b", "c"])
        assert schema.combination(0b110).names == ("b", "c")
        assert schema.combination(["c", "a"]).names == ("a", "c")

    def test_project_and_prefix(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).names == ("c", "a")
        assert schema.prefix(2).names == ("a", "b")
        with pytest.raises(SchemaError):
            schema.prefix(0)
        with pytest.raises(SchemaError):
            schema.prefix(4)

    def test_equality_and_iteration(self):
        one = Schema(["a", "b"])
        two = schema_of(["a", "b"])
        assert one == two
        assert [column.name for column in one] == ["a", "b"]
        assert one[1].name == "b"
