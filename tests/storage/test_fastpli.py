"""Unit tests for the array-backed PLI."""

import numpy as np

from repro.storage.fastpli import ArrayPli
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def build(rows):
    return Relation.from_rows(Schema(["a", "b"]), rows)


class TestConstruction:
    def test_for_column(self):
        relation = build([("x", "1"), ("x", "2"), ("y", "3")])
        pli = ArrayPli.for_column(relation, 0)
        assert pli.has_duplicates
        assert pli.n_entries() == 2
        assert pli.n_clusters() == 1
        assert list(pli.clusters()) == [frozenset({0, 1})]

    def test_for_column_skips_tombstones(self):
        relation = build([("x", "1"), ("x", "2"), ("x", "3")])
        relation.delete(1)
        pli = ArrayPli.for_column(relation, 0)
        assert list(pli.clusters()) == [frozenset({0, 2})]

    def test_unique_column(self):
        relation = build([("x", "1"), ("y", "2")])
        pli = ArrayPli.for_column(relation, 0)
        assert not pli.has_duplicates
        assert pli.n_clusters() == 0


class TestDense:
    def test_dense_roundtrip(self):
        relation = build([("x", "1"), ("x", "2"), ("y", "3"), ("y", "4")])
        pli = ArrayPli.for_column(relation, 0)
        dense = pli.dense
        assert dense.shape == (4,)
        assert dense[0] == dense[1]
        assert dense[2] == dense[3]
        assert dense[0] != dense[2]

    def test_dense_cached(self):
        relation = build([("x", "1"), ("x", "2")])
        pli = ArrayPli.for_column(relation, 0)
        assert pli.dense is pli.dense


class TestIntersect:
    def test_basic(self):
        relation = build(
            [("x", "1"), ("x", "1"), ("x", "2"), ("y", "1"), ("y", "1")]
        )
        left = ArrayPli.for_column(relation, 0)
        right = ArrayPli.for_column(relation, 1)
        result = left.intersect(right)
        assert set(result.clusters()) == {frozenset({0, 1}), frozenset({3, 4})}

    def test_empty_result(self):
        relation = build([("x", "1"), ("x", "2"), ("y", "3"), ("y", "4")])
        left = ArrayPli.for_column(relation, 0)
        right = ArrayPli.for_column(relation, 1)
        assert not left.intersect(right).has_duplicates

    def test_intersect_with_empty(self):
        relation = build([("x", "1"), ("x", "2")])
        left = ArrayPli.for_column(relation, 0)
        empty = ArrayPli(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 2
        )
        assert not left.intersect(empty).has_duplicates
        assert not empty.intersect(left).has_duplicates

    def test_repr(self):
        relation = build([("x", "1"), ("x", "2")])
        assert "entries=2" in repr(ArrayPli.for_column(relation, 0))
