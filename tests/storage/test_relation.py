"""Unit tests for the columnar relation."""

import pytest

from repro.errors import ArityError, TupleIdError
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def schema():
    return Schema(["a", "b", "c"])


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema,
        [("1", "x", "p"), ("2", "y", "p"), ("3", "x", "q")],
    )


class TestInserts:
    def test_ids_are_sequential(self, schema):
        relation = Relation(schema)
        assert relation.insert(("1", "2", "3")) == 0
        assert relation.insert(("4", "5", "6")) == 1
        assert relation.next_tuple_id == 2

    def test_wrong_arity_rejected(self, schema):
        relation = Relation(schema)
        with pytest.raises(ArityError):
            relation.insert(("only", "two"))

    def test_insert_many(self, relation):
        ids = relation.insert_many([("4", "z", "r"), ("5", "w", "s")])
        assert ids == [3, 4]
        assert len(relation) == 5

    def test_insert_many_bad_arity_leaves_relation_unchanged(self, relation):
        with pytest.raises(ArityError):
            relation.insert_many([("4", "z", "r"), ("too", "short")])
        assert len(relation) == 3
        assert relation.next_tuple_id == 3
        assert relation.encoding.column(0).size == 3

    def test_insert_many_matches_repeated_insert(self, schema):
        batched = Relation(schema)
        batched.insert_many([("1", "x", "p"), ("1", "y", "q")])
        serial = Relation(schema)
        for row in [("1", "x", "p"), ("1", "y", "q")]:
            serial.insert(row)
        assert list(batched.iter_items()) == list(serial.iter_items())
        for column in range(3):
            assert (
                batched.encoding.column(column).codes.tolist()
                == serial.encoding.column(column).codes.tolist()
            )


class TestDeletes:
    def test_delete_returns_row(self, relation):
        assert relation.delete(1) == ("2", "y", "p")
        assert len(relation) == 2
        assert not relation.is_live(1)

    def test_delete_twice_fails(self, relation):
        relation.delete(1)
        with pytest.raises(TupleIdError):
            relation.delete(1)

    def test_delete_unknown_fails(self, relation):
        with pytest.raises(TupleIdError):
            relation.delete(99)

    def test_ids_not_reused_after_delete(self, relation):
        relation.delete(2)
        assert relation.insert(("9", "9", "9")) == 3

    def test_iteration_skips_tombstones(self, relation):
        relation.delete(1)
        assert list(relation.iter_ids()) == [0, 2]
        assert list(relation.iter_rows()) == [("1", "x", "p"), ("3", "x", "q")]
        assert [tid for tid, _ in relation.iter_items()] == [0, 2]

    def test_compact_renumbers(self, relation):
        relation.delete(0)
        compacted = relation.compact()
        assert list(compacted.iter_ids()) == [0, 1]
        assert len(compacted) == 2

    def test_compact_in_place_keeps_ids(self, relation):
        relation.delete(1)
        assert relation.compact_in_place() == 1
        assert relation.storage_rows == 2
        assert relation.tombstone_count == 0
        assert list(relation.iter_ids()) == [0, 2]
        assert relation.row(2) == ("3", "x", "q")
        with pytest.raises(TupleIdError):
            relation.row(1)
        # Fresh inserts keep allocating past the old high-water mark.
        assert relation.insert(("9", "9", "9")) == 3
        assert relation.row(3) == ("9", "9", "9")

    def test_compact_in_place_preserves_code_gathers(self, relation):
        import numpy as np

        before = {
            tuple_id: relation.codes_for_ids(
                0, np.asarray([tuple_id], dtype=np.int64)
            ).tolist()
            for tuple_id in [0, 2]
        }
        relation.delete(1)
        relation.compact_in_place()
        for tuple_id, codes in before.items():
            assert (
                relation.codes_for_ids(
                    0, np.asarray([tuple_id], dtype=np.int64)
                ).tolist()
                == codes
            )
        assert relation.live_fraction == 1.0

    def test_repeated_compaction_composes(self, relation):
        relation.insert_many([("4", "z", "r"), ("5", "w", "s")])
        relation.delete(0)
        relation.compact_in_place()
        relation.delete(3)
        assert relation.compact_in_place() == 1
        assert list(relation.iter_ids()) == [1, 2, 4]
        assert relation.row(4) == ("5", "w", "s")


class TestAccess:
    def test_row_and_value(self, relation):
        assert relation.row(2) == ("3", "x", "q")
        assert relation.value(2, 1) == "x"

    def test_row_of_deleted_fails(self, relation):
        relation.delete(0)
        with pytest.raises(TupleIdError):
            relation.row(0)

    def test_project(self, relation):
        assert relation.project(0, 0b101) == ("1", "p")
        assert relation.project(0, 0) == ()

    def test_project_row(self, relation):
        assert relation.project_row(("9", "8", "7"), 0b110) == ("8", "7")

    def test_column_values(self, relation):
        assert list(relation.column_values(1)) == [(0, "x"), (1, "y"), (2, "x")]

    def test_cardinality(self, relation):
        assert relation.cardinality(1) == 2
        relation.delete(1)
        assert relation.cardinality(1) == 1


class TestDuplicates:
    def test_duplicate_exists(self, relation):
        assert relation.duplicate_exists(0b010)  # column b has two 'x'
        assert not relation.duplicate_exists(0b001)
        assert relation.duplicate_exists(0)  # empty projection, >1 row

    def test_group_duplicates(self, relation):
        groups = relation.group_duplicates(0b010)
        assert groups == {("x",): [0, 2]}

    def test_group_duplicates_respects_deletes(self, relation):
        relation.delete(2)
        assert relation.group_duplicates(0b010) == {}


class TestCopyAndRestrict:
    def test_copy_preserves_tombstones(self, relation):
        relation.delete(1)
        clone = relation.copy()
        assert list(clone.iter_ids()) == [0, 2]
        clone.insert(("9", "9", "9"))
        assert len(relation) == 2  # original unaffected

    def test_restrict_columns(self, relation):
        narrow = relation.restrict_columns(2)
        assert narrow.schema.names == ("a", "b")
        assert list(narrow.iter_rows()) == [("1", "x"), ("2", "y"), ("3", "x")]


class TestCsvRoundtrip:
    def test_roundtrip(self, relation, tmp_path):
        path = str(tmp_path / "data.csv")
        relation.delete(1)
        relation.to_csv(path)
        loaded = Relation.from_csv(path)
        assert loaded.schema.names == relation.schema.names
        assert list(loaded.iter_rows()) == list(relation.iter_rows())

    def test_header_mismatch_rejected(self, relation, tmp_path):
        path = str(tmp_path / "data.csv")
        relation.to_csv(path)
        with pytest.raises(ArityError):
            Relation.from_csv(path, schema=Schema(["x", "y", "z"]))
