"""Edge-case and robustness tests for the storage layer."""

import pytest

from repro.storage.relation import Relation, transform_rows
from repro.storage.schema import Schema


class TestUnusualValues:
    def test_unicode_and_control_characters(self, tmp_path):
        schema = Schema(["a", "b"])
        rows = [
            ("héllo wörld", "x"),
            ("tab\there", "y"),
            ("newline\nvalue", "z"),
            ("", "empty-left"),
        ]
        relation = Relation.from_rows(schema, rows)
        path = str(tmp_path / "weird.csv")
        relation.to_csv(path)
        loaded = Relation.from_csv(path)
        assert list(loaded.iter_rows()) == rows

    def test_empty_string_is_a_value(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("",), ("",), ("x",)])
        assert relation.duplicate_exists(0b1)
        assert relation.cardinality(0) == 2

    def test_none_values_are_hashable_cells(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [(None, 1), (None, 2)])
        assert relation.duplicate_exists(0b01)
        assert not relation.duplicate_exists(0b10)

    def test_mixed_type_cells(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [(1,), ("1",)])
        # int 1 and str "1" are distinct values
        assert not relation.duplicate_exists(0b1)


class TestDeleteReinsertCycles:
    def test_profile_relevant_state_after_churn(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [("x", "1"), ("y", "2")])
        for round_number in range(5):
            tuple_id = relation.insert((f"v{round_number}", "9"))
            relation.delete(tuple_id)
        assert len(relation) == 2
        assert relation.next_tuple_id == 7
        assert list(relation.iter_ids()) == [0, 1]

    def test_delete_everything_then_rebuild(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("x",), ("y",)])
        relation.delete_many([0, 1])
        assert len(relation) == 0
        assert list(relation.iter_rows()) == []
        relation.insert(("z",))
        assert list(relation.iter_ids()) == [2]


class TestTransformRows:
    def test_transform(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [("x", "1"), ("y", "2")])
        upper = transform_rows(relation, lambda row: (row[0].upper(), row[1]))
        assert list(upper.iter_rows()) == [("X", "1"), ("Y", "2")]
        # original untouched
        assert list(relation.iter_rows())[0] == ("x", "1")


class TestWideRelations:
    def test_many_columns(self):
        n_columns = 80
        schema = Schema([f"c{i}" for i in range(n_columns)])
        rows = [tuple(str((r * 7 + c) % 5) for c in range(n_columns)) for r in range(20)]
        relation = Relation.from_rows(schema, rows)
        assert relation.n_columns == n_columns
        wide_mask = (1 << n_columns) - 1
        assert relation.project(0, wide_mask) == rows[0]

    def test_restrict_columns_bounds(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [("1", "2")])
        with pytest.raises(Exception):
            relation.restrict_columns(3)
