"""Unit tests for the sparse index's mixed-mode retrieval."""

import pytest

from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.sparse_index import (
    SparseIndex,
    build_in_memory_store,
    sparse_index_for_relation,
)


@pytest.fixture
def store():
    rows = [(str(i), str(i * 2)) for i in range(100)]
    seek_read, offsets = build_in_memory_store(rows)
    return SparseIndex(seek_read=seek_read, offsets=offsets, scan_gap=4)


class TestRetrieval:
    def test_fetches_requested_rows(self, store):
        rows, stats = store.retrieve_tuples([5, 50, 7])
        assert rows == {5: ("5", "10"), 7: ("7", "14"), 50: ("50", "100")}
        assert stats.requested == 3

    def test_deduplicates_requests(self, store):
        rows, stats = store.retrieve_tuples([3, 3, 3])
        assert rows == {3: ("3", "6")}
        assert stats.requested == 1

    def test_sequential_scan_for_close_ids(self, store):
        __, stats = store.retrieve_tuples([10, 12, 14])
        # gaps of 2 are within scan_gap=4: one seek, then scanning
        assert stats.random_seeks == 1
        assert stats.tuples_scanned == 5  # 10, 11, 12, 13, 14

    def test_random_seeks_for_far_ids(self, store):
        __, stats = store.retrieve_tuples([0, 50, 99])
        assert stats.random_seeks == 3
        assert stats.tuples_scanned == 3

    def test_empty_request(self, store):
        rows, stats = store.retrieve_tuples([])
        assert rows == {}
        assert stats.random_seeks == 0

    def test_unknown_id_raises(self, store):
        store.forget([5])
        with pytest.raises(KeyError):
            store.retrieve_tuples([5])


class TestRelationBacked:
    def test_skips_tombstones_in_scan(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [(str(i),) for i in range(10)])
        index = sparse_index_for_relation(relation)
        relation.delete(3)
        index.forget([3])
        rows, __ = index.retrieve_tuples([2, 4])
        assert rows == {2: ("2",), 4: ("4",)}

    def test_register_new_inserts(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("0",)])
        index = sparse_index_for_relation(relation)
        new_id = relation.insert(("1",))
        index.register(new_id, new_id)
        rows, __ = index.retrieve_tuples([new_id])
        assert rows == {new_id: ("1",)}
