"""Unit tests for the dictionary-encoding layer."""

import numpy as np
import pytest

from repro.storage.encoding import (
    ColumnEncoding,
    RelationEncoding,
    encode_rows_local,
    union_sorted,
)


class TestColumnEncoding:
    def test_encode_first_seen_order(self):
        encoding = ColumnEncoding()
        assert encoding.encode("b") == 0
        assert encoding.encode("a") == 1
        assert encoding.encode("b") == 0
        assert encoding.n_codes == 2
        assert encoding.decode(0) == "b"
        assert encoding.decode(1) == "a"

    def test_code_of_does_not_intern(self):
        encoding = ColumnEncoding()
        assert encoding.code_of("never seen") is None
        assert encoding.n_codes == 0
        assert "never seen" not in encoding
        encoding.encode("seen")
        assert encoding.code_of("seen") == 0
        assert "seen" in encoding

    def test_append_tracks_positions(self):
        encoding = ColumnEncoding()
        for value in ["x", "y", "x", "z"]:
            encoding.append(value)
        assert encoding.size == 4
        assert encoding.codes.tolist() == [0, 1, 0, 2]

    def test_append_batch_matches_append(self):
        values = ["p", "q", "p", "", "q", "r"]
        one_by_one = ColumnEncoding()
        for value in values:
            one_by_one.append(value)
        batched = ColumnEncoding()
        codes = batched.append_batch(values)
        assert codes.tolist() == one_by_one.codes.tolist()
        assert batched.codes.tolist() == one_by_one.codes.tolist()
        assert batched.n_codes == one_by_one.n_codes

    def test_growth_past_initial_capacity(self):
        encoding = ColumnEncoding()
        values = [str(i % 7) for i in range(1000)]
        encoding.append_batch(values)
        assert encoding.size == 1000
        assert encoding.n_codes == 7
        assert encoding.decode(int(encoding.codes[999])) == values[999]

    def test_codes_at_gathers(self):
        encoding = ColumnEncoding()
        encoding.append_batch(["a", "b", "a", "c"])
        gathered = encoding.codes_at(np.asarray([3, 0, 2]))
        assert gathered.tolist() == [2, 0, 0]

    def test_compact_keeps_dictionary(self):
        encoding = ColumnEncoding()
        encoding.append_batch(["a", "b", "c", "b"])
        encoding.compact(np.asarray([0, 3]))
        assert encoding.size == 2
        assert encoding.codes.tolist() == [0, 1]
        # Codes are stable identities: "c" keeps its code even though
        # no surviving position carries it.
        assert encoding.n_codes == 3
        assert encoding.code_of("c") == 2

    def test_copy_is_independent(self):
        encoding = ColumnEncoding()
        encoding.append_batch(["a", "b"])
        clone = encoding.copy()
        clone.append("c")
        assert encoding.size == 2
        assert encoding.n_codes == 2
        assert clone.size == 3
        assert clone.n_codes == 3

    def test_distinct_python_types_get_distinct_codes(self):
        encoding = ColumnEncoding()
        codes = {encoding.encode(value) for value in [None, "", "None", 0]}
        assert len(codes) == 4
        # ...but equal values share one, following Python equality.
        assert encoding.encode(0) == encoding.encode(0.0)


class TestRelationEncoding:
    def test_append_row_spreads_columns(self):
        encoding = RelationEncoding(2)
        encoding.append_row(("a", "b"))
        encoding.append_row(("a", "c"))
        assert encoding.column(0).codes.tolist() == [0, 0]
        assert encoding.column(1).codes.tolist() == [0, 1]
        assert len(encoding) == 2

    def test_compact_applies_to_every_column(self):
        encoding = RelationEncoding(2)
        for row in [("a", "1"), ("b", "2"), ("c", "3")]:
            encoding.append_row(row)
        encoding.compact(np.asarray([2]))
        assert encoding.column(0).codes.tolist() == [2]
        assert encoding.column(1).codes.tolist() == [2]

    def test_stats_dict(self):
        encoding = RelationEncoding(2)
        encoding.append_row(("a", "1"))
        encoding.append_row(("a", "2"))
        stats = encoding.stats_dict()
        assert stats["columns"] == 2
        assert stats["distinct_values"] == 3
        assert stats["encoded_cells"] == 4
        assert stats["code_bytes"] == 32


class TestHelpers:
    def test_encode_rows_local_equality_iff_code_equality(self):
        rows = [("a", "1"), ("b", "1"), ("a", "2")]
        codes = encode_rows_local(rows, 0)
        assert codes[0] == codes[2]
        assert codes[0] != codes[1]

    def test_union_sorted(self):
        arrays = [
            np.asarray([1, 3], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.asarray([2, 3], dtype=np.int64),
        ]
        assert union_sorted(arrays).tolist() == [1, 2, 3]
        assert union_sorted([]).size == 0

    def test_union_sorted_single_array_is_passthrough(self):
        only = np.asarray([4, 9], dtype=np.int64)
        assert union_sorted([only]) is only
