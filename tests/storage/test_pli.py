"""Unit tests for position list indexes."""

import random

import pytest

from repro.storage.pli import PositionListIndex, pli_for_combination
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(["a", "b", "c"])
    return Relation.from_rows(
        schema,
        [
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "2", "p"),
            ("x", "2", "q"),
            ("z", "3", "p"),
        ],
    )


def clusters_of(pli: PositionListIndex) -> set[frozenset[int]]:
    return set(pli.clusters())


class TestConstruction:
    def test_for_column_keeps_only_duplicates(self, relation):
        pli = PositionListIndex.for_column(relation, 0)
        assert clusters_of(pli) == {frozenset({0, 1, 3})}
        assert pli.has_duplicates
        assert pli.n_entries() == 3

    def test_for_column_unique_column(self, relation):
        relation.delete(1)
        relation.delete(3)
        pli = PositionListIndex.for_column(relation, 0)
        assert not pli.has_duplicates

    def test_for_mask_matches_direct_grouping(self, relation):
        pli = PositionListIndex.for_mask(relation, 0b011)
        assert clusters_of(pli) == {frozenset({0, 1})}

    def test_from_clusters_drops_singletons(self):
        pli = PositionListIndex.from_clusters([[1], [2, 3]])
        assert clusters_of(pli) == {frozenset({2, 3})}


class TestMembership:
    def test_cluster_of(self, relation):
        pli = PositionListIndex.for_column(relation, 0)
        assert pli.cluster_of(0) == pli.cluster_of(1) == pli.cluster_of(3)
        assert pli.cluster_of(2) is None
        assert 0 in pli
        assert 2 not in pli

    def test_clusters_containing(self, relation):
        pli = PositionListIndex.for_column(relation, 1)
        touching = pli.clusters_containing([0, 2, 4, 99])
        assert set(touching) == {frozenset({0, 1}), frozenset({2, 3})}


class TestDynamicMaintenance:
    def test_add_creates_cluster_from_singleton(self):
        pli = PositionListIndex(track_values=True)
        pli.add("v", 1)
        assert not pli.has_duplicates
        pli.add("v", 2)
        assert clusters_of(pli) == {frozenset({1, 2})}
        pli.add("v", 3)
        assert clusters_of(pli) == {frozenset({1, 2, 3})}

    def test_remove_shrinks_and_remembers_singleton(self):
        pli = PositionListIndex(track_values=True)
        for tuple_id in (1, 2):
            pli.add("v", tuple_id)
        pli.remove("v", 1)
        assert not pli.has_duplicates
        # the surviving member must be recoverable on re-insert
        pli.add("v", 5)
        assert clusters_of(pli) == {frozenset({2, 5})}

    def test_remove_unknown_is_noop(self):
        pli = PositionListIndex(track_values=True)
        pli.add("v", 1)
        pli.remove("w", 9)
        pli.remove("v", 1)
        assert not pli.has_duplicates

    def test_untracked_pli_rejects_add(self):
        pli = PositionListIndex()
        with pytest.raises(ValueError):
            pli.add("v", 1)
        with pytest.raises(ValueError):
            pli.remove("v", 1)


class TestIntersection:
    def test_intersect_equals_direct(self, relation):
        left = PositionListIndex.for_column(relation, 0)
        right = PositionListIndex.for_column(relation, 1)
        direct = PositionListIndex.for_mask(relation, 0b011)
        assert clusters_of(left.intersect(right)) == clusters_of(direct)

    def test_intersect_random(self):
        for seed in range(20):
            rng = random.Random(seed)
            schema = Schema(["a", "b", "c"])
            rows = [
                tuple(str(rng.randrange(3)) for _ in range(3)) for _ in range(40)
            ]
            relation = Relation.from_rows(schema, rows)
            plis = {
                column: PositionListIndex.for_column(relation, column)
                for column in range(3)
            }
            for mask in range(1, 8):
                expected = clusters_of(PositionListIndex.for_mask(relation, mask))
                got = clusters_of(pli_for_combination(relation, mask, plis))
                assert got == expected, (seed, mask)

    def test_intersect_restricted(self, relation):
        left = PositionListIndex.for_column(relation, 0)
        right = PositionListIndex.for_column(relation, 1)
        # restrict to clusters containing tuple 3: cluster {0,1,3} in a
        restricted = left.intersect_restricted(right, [3])
        assert clusters_of(restricted) == {frozenset({0, 1})}
        # restricting to an untouched tuple gives nothing
        assert not left.intersect_restricted(right, [4]).has_duplicates

    def test_empty_mask_pli(self, relation):
        pli = pli_for_combination(relation, 0, {})
        assert clusters_of(pli) == {frozenset({0, 1, 2, 3, 4})}


class TestRemoveIds:
    def test_remove_ids_drops_small_clusters(self, relation):
        pli = PositionListIndex.for_column(relation, 0)
        pli.remove_ids([0, 1])
        assert not pli.has_duplicates
        assert pli.n_entries() == 0

    def test_remove_ids_partial(self, relation):
        pli = PositionListIndex.for_column(relation, 0)
        pli.remove_ids([0])
        assert clusters_of(pli) == {frozenset({1, 3})}

    def test_copy_is_independent(self, relation):
        pli = PositionListIndex.for_column(relation, 0)
        clone = pli.copy()
        clone.remove_ids([0, 1, 3])
        assert pli.has_duplicates
        assert not clone.has_duplicates


class TestAliasing:
    """pli_for_combination must never return a maintained column PLI.

    Regression: the early-break multi-column path (cheapest column has
    no duplicates, so the loop exits before the first intersect) used
    to hand the caller the live value-tracking index itself; a
    remove_ids on the "throwaway" result silently corrupted the
    maintained PLI.
    """

    @pytest.fixture
    def unique_first_relation(self):
        # Column a is fully unique (cheapest, no duplicates -> early
        # break); column b has duplicates.
        schema = Schema(["a", "b"])
        return Relation.from_rows(
            schema,
            [("u", "1"), ("v", "1"), ("w", "2"), ("x", "2")],
        )

    def test_single_column_returns_copy(self, relation):
        plis = {0: PositionListIndex.for_column(relation, 0)}
        result = pli_for_combination(relation, 0b001, plis)
        assert result is not plis[0]
        result.remove_ids([0, 1, 3])
        assert plis[0].has_duplicates

    def test_early_break_multi_column_returns_copy(self, unique_first_relation):
        relation = unique_first_relation
        plis = {
            column: PositionListIndex.for_column(relation, column)
            for column in range(2)
        }
        assert not plis[0].has_duplicates  # early break is really taken
        result = pli_for_combination(relation, 0b011, plis)
        assert result is not plis[0]
        # Mutating the result must not leak into the maintained index...
        result.remove_ids(list(range(4)))
        assert plis[0].n_clusters() == 0 and not plis[0].has_duplicates
        # ...and later index maintenance must not mutate the result: an
        # insert of a repeated "u" clusters the maintained PLI but the
        # returned snapshot stays empty.
        plis[0].add("u", 4)
        assert plis[0].has_duplicates
        assert not result.has_duplicates

    def test_maintained_pli_survives_caller_mutation(self, unique_first_relation):
        relation = unique_first_relation
        plis = {
            column: PositionListIndex.for_column(relation, column)
            for column in range(2)
        }
        before = clusters_of(plis[1])
        result = pli_for_combination(relation, 0b010, plis)
        result.remove_ids([0, 1, 2, 3])
        assert clusters_of(plis[1]) == before
