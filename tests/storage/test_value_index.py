"""Unit tests for value indexes and the index pool."""

import pytest

from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.value_index import IndexPool, ValueIndex


@pytest.fixture
def relation():
    schema = Schema(["a", "b"])
    return Relation.from_rows(
        schema, [("x", "1"), ("y", "2"), ("x", "3")]
    )


class TestValueIndex:
    def test_build_and_lookup(self, relation):
        index = ValueIndex.build(relation, 0)
        assert index.lookup("x") == {0, 2}
        assert index.lookup("y") == {1}
        assert index.lookup("z") == frozenset()
        assert index.column == 0

    def test_add_and_remove(self):
        index = ValueIndex(0)
        index.add("v", 7)
        index.add("v", 8)
        index.remove("v", 7)
        assert index.lookup("v") == {8}
        index.remove("v", 8)
        assert "v" not in index
        index.remove("v", 8)  # idempotent

    def test_lookup_many_unions_distinct_values(self, relation):
        index = ValueIndex.build(relation, 0)
        assert index.lookup_many(["x", "y", "x"]) == {0, 1, 2}

    def test_counters(self, relation):
        index = ValueIndex.build(relation, 0)
        assert len(index) == 2
        assert index.n_entries() == 3
        assert sorted(index.iter_values()) == ["x", "y"]


class TestImmutableViews:
    def test_lookup_view_is_cached_until_mutation(self, relation):
        index = ValueIndex.build(relation, 0)
        first = index.lookup("x")
        assert index.lookup("x") is first  # cached, no per-probe copy
        index.add("x", 9)
        assert index.lookup("x") == {0, 2, 9}
        assert index.lookup("x") is not first
        assert first == {0, 2}  # the old view never mutated under the caller

    def test_remove_invalidates_view(self, relation):
        index = ValueIndex.build(relation, 0)
        held = index.lookup("x")
        index.remove("x", 0)
        assert index.lookup("x") == {2}
        assert held == {0, 2}

    def test_batch_maintenance_invalidates_view(self, relation):
        import numpy as np

        index = ValueIndex.build(relation, 0)
        held = index.lookup("x")
        code = index.encoding.code_of("x")
        index.add_batch(
            np.asarray([code], dtype=np.int64), np.asarray([7], dtype=np.int64)
        )
        assert index.lookup("x") == {0, 2, 7}
        index.remove_batch(
            np.asarray([code, code], dtype=np.int64),
            np.asarray([0, 7], dtype=np.int64),
        )
        assert index.lookup("x") == {2}
        assert held == {0, 2}

    def test_posting_arrays_are_read_only(self, relation):
        import numpy as np

        index = ValueIndex.build(relation, 0)
        posting = index.lookup_array("x")
        with pytest.raises(ValueError):
            posting[0] = 99
        for batched in index.lookup_batch(["x", "unseen"]):
            with pytest.raises(ValueError):
                batched[:] = 0
        index.add("x", 9)
        with pytest.raises(ValueError):
            index.lookup_array("x")[0] = 99
        assert np.asarray(posting).tolist() == [0, 2]  # held array unharmed


class TestIndexPool:
    def test_build_selected_columns(self, relation):
        pool = IndexPool.build(relation, [1])
        assert pool.columns == {1}
        assert 1 in pool
        assert 0 not in pool
        assert pool.get(1).lookup("2") == {1}

    def test_ensure_builds_lazily(self, relation):
        pool = IndexPool.build(relation, [])
        index = pool.ensure(relation, 0)
        assert index.lookup("x") == {0, 2}
        assert pool.ensure(relation, 0) is index

    def test_register_inserts(self, relation):
        pool = IndexPool.build(relation, [0])
        tuple_id = relation.insert(("x", "9"))
        pool.register_inserts(relation, [tuple_id])
        assert pool.get(0).lookup("x") == {0, 2, tuple_id}

    def test_register_deletes(self, relation):
        pool = IndexPool.build(relation, [0, 1])
        row = relation.row(0)
        relation.delete(0)
        pool.register_deletes({0: row})
        assert pool.get(0).lookup("x") == {2}
        assert pool.get(1).lookup("1") == frozenset()
