"""Unit tests for the cross-batch partition cache."""

import numpy as np
import pytest

from repro.storage.fastpli import ArrayPli
from repro.storage.pli import PositionListIndex
from repro.storage.plicache import PartitionCache, partition_nbytes


def array_pli(ids, labels, capacity=16):
    return ArrayPli(
        np.asarray(ids, dtype=np.int64),
        np.asarray(labels, dtype=np.int64),
        capacity,
    )


@pytest.fixture
def pli():
    return array_pli([0, 1, 2, 3], [0, 0, 1, 1])


class TestGenerationTagging:
    def test_hit_at_matching_generation(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 5, pli)
        assert cache.get(0b11, 5) is pli
        assert cache.stats.hits == 1

    def test_stale_generation_never_served(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 5, pli)
        assert cache.get(0b11, 6) is None
        assert cache.stats.stale_misses == 1
        # The stale entry was dropped, not kept around.
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_older_generation_also_misses(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 5, pli)
        assert cache.get(0b11, 4) is None

    def test_miss_on_absent_mask(self):
        cache = PartitionCache()
        assert cache.get(0b1, 0) is None
        assert cache.stats.misses == 1

    def test_put_many_publishes_batch(self, pli):
        cache = PartitionCache()
        other = array_pli([4, 5], [0, 0])
        cache.put_many({0b01: pli, 0b10: other}, generation=3)
        assert cache.get(0b01, 3) is pli
        assert cache.get(0b10, 3) is other


class TestBestAncestor:
    def test_largest_subset_wins(self, pli):
        cache = PartitionCache()
        small = array_pli([0, 1], [0, 0])
        cache.put(0b001, 0, small)
        cache.put(0b011, 0, pli)
        found = cache.best_ancestor(0b111, 0)
        assert found is not None
        mask, partition = found
        assert mask == 0b011
        assert partition is pli
        assert cache.stats.ancestor_seeds == 1

    def test_exact_mask_is_not_its_own_ancestor(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 0, pli)
        assert cache.best_ancestor(0b11, 0) is None

    def test_wrong_generation_excluded(self, pli):
        cache = PartitionCache()
        cache.put(0b01, 1, pli)
        assert cache.best_ancestor(0b11, 0) is None

    def test_empty_mask_excluded(self, pli):
        cache = PartitionCache()
        cache.put(0, 0, pli)
        assert cache.best_ancestor(0b11, 0) is None

    def test_non_subset_excluded(self, pli):
        cache = PartitionCache()
        cache.put(0b101, 0, pli)
        assert cache.best_ancestor(0b011, 0) is None


class TestKinds:
    def test_array_and_pointer_keyspaces_are_disjoint(self, pli):
        cache = PartitionCache()
        pointer = PositionListIndex.from_clusters([[0, 1]])
        cache.put(0b11, 0, pli, kind="array")
        cache.put(0b11, 0, pointer, kind="pli")
        assert cache.get(0b11, 0, kind="array") is pli
        assert cache.get(0b11, 0, kind="pli") is pointer

    def test_ancestor_respects_kind(self, pli):
        cache = PartitionCache()
        cache.put(0b01, 0, pli, kind="array")
        assert cache.best_ancestor(0b11, 0, kind="pli") is None


class TestEviction:
    def test_lru_eviction_under_budget(self):
        one = array_pli([0, 1], [0, 0])
        per_entry = partition_nbytes(one)
        cache = PartitionCache(budget_bytes=2 * per_entry)
        cache.put(0b001, 0, one)
        cache.put(0b010, 0, array_pli([2, 3], [0, 0]))
        # Touch the first entry so the second becomes LRU.
        assert cache.get(0b001, 0) is one
        cache.put(0b100, 0, array_pli([4, 5], [0, 0]))
        assert cache.stats.evictions == 1
        assert cache.get(0b010, 0) is None  # evicted
        assert cache.get(0b001, 0) is one  # survived (recently used)
        assert cache.current_bytes <= 2 * per_entry

    def test_oversized_entry_not_stored(self, pli):
        cache = PartitionCache(budget_bytes=1)
        cache.put(0b11, 0, pli)
        assert len(cache) == 0
        assert cache.get(0b11, 0) is None

    def test_zero_budget_stores_nothing(self, pli):
        cache = PartitionCache(budget_bytes=0)
        cache.put(0b11, 0, pli)
        assert len(cache) == 0

    def test_unbounded_budget(self, pli):
        cache = PartitionCache(budget_bytes=None)
        for mask in range(1, 40):
            cache.put(mask, 0, pli)
        assert len(cache) == 39
        assert cache.stats.evictions == 0

    def test_refresh_replaces_accounting(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 0, pli)
        before = cache.current_bytes
        cache.put(0b11, 1, pli)
        assert len(cache) == 1
        assert cache.current_bytes == before

    def test_clear(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 0, pli)
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0


class TestDenseMapAccounting:
    """Regression: seeded entries were charged at their store-time size.

    An ArrayPli's dense probe map materializes lazily on first use --
    often *after* ``put``, when the entry is served as an ancestor seed
    for a larger intersection. The cache used to keep the store-time
    byte count forever, so a budget full of seeded entries could hold
    several times its configured bytes. Touches now re-measure.
    """

    def test_nbytes_grows_with_dense_map(self):
        pli = array_pli([0, 1, 2, 3], [0, 0, 1, 1], capacity=1024)
        before = partition_nbytes(pli)
        pli.dense  # materialize the capacity-sized probe map
        after = partition_nbytes(pli)
        assert after >= before + 1024 * 8

    def test_get_remeasures_and_reenforces_budget(self):
        capacity = 4096
        lean = partition_nbytes(array_pli([0, 1], [0, 0], capacity=capacity))
        cache = PartitionCache(budget_bytes=3 * lean)
        plis = [
            array_pli([2 * i, 2 * i + 1], [0, 0], capacity=capacity)
            for i in range(3)
        ]
        for i, pli in enumerate(plis):
            cache.put(1 << i, 0, pli)
        assert len(cache) == 3  # all fit while dense-free
        plis[2].dense  # grows past the whole budget behind the cache's back
        assert cache.get(0b100, 0) is plis[2]
        # The touch re-measured: accounting now reflects the dense map,
        # and older entries were evicted to honor the budget again. The
        # touched entry itself is protected, like a fresh ``put``.
        assert cache.current_bytes >= capacity * 8
        assert len(cache) == 1
        assert cache.get(0b100, 0) is plis[2]

    def test_best_ancestor_remeasures(self):
        capacity = 2048
        pli = array_pli([0, 1], [0, 0], capacity=capacity)
        cache = PartitionCache(budget_bytes=None)
        cache.put(0b01, 0, pli)
        before = cache.current_bytes
        pli.dense
        found = cache.best_ancestor(0b11, 0)
        assert found is not None
        assert cache.current_bytes >= before + capacity * 8

    def test_remeasure_keeps_stats_consistent(self):
        pli = array_pli([0, 1], [0, 0], capacity=512)
        cache = PartitionCache()
        cache.put(0b01, 0, pli)
        pli.dense
        cache.get(0b01, 0)
        stats = cache.stats_dict()
        assert stats["bytes"] == cache.current_bytes
        assert stats["bytes"] == partition_nbytes(pli)


class TestAccounting:
    def test_nbytes_array_pli(self, pli):
        assert partition_nbytes(pli) >= pli.ids.nbytes + pli.labels.nbytes

    def test_nbytes_pointer_pli(self):
        pointer = PositionListIndex.from_clusters([[0, 1, 2], [3, 4]])
        assert partition_nbytes(pointer) > 0

    def test_stats_dict_shape(self, pli):
        cache = PartitionCache()
        cache.put(0b11, 0, pli)
        cache.get(0b11, 0)
        cache.get(0b01, 0)
        stats = cache.stats_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == cache.current_bytes
