"""Unit tests for the CSV-backed tuple store."""

import pytest

from repro.errors import TupleIdError
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.table_file import TableFile


@pytest.fixture
def relation():
    schema = Schema(["a", "b"])
    return Relation.from_rows(
        schema, [("x", "1"), ("y,comma", "2"), ('quo"te', "3")]
    )


class TestTableFile:
    def test_create_and_seek_read(self, relation, tmp_path):
        path = str(tmp_path / "table.dat")
        with TableFile.create(path, relation) as table:
            index = table.sparse_index()
            rows, __ = index.retrieve_tuples([0, 1, 2])
            assert rows[0] == ("x", "1")
            assert rows[1] == ("y,comma", "2")
            assert rows[2] == ('quo"te', "3")

    def test_append_batch(self, relation, tmp_path):
        path = str(tmp_path / "table.dat")
        with TableFile.create(path, relation) as table:
            table.append_batch([(3, ("z", "4"))])
            index = table.sparse_index()
            rows, __ = index.retrieve_tuples([3])
            assert rows[3] == ("z", "4")

    def test_sequential_read_across_tuples(self, relation, tmp_path):
        path = str(tmp_path / "table.dat")
        with TableFile.create(path, relation) as table:
            index = table.sparse_index(scan_gap=10)
            rows, stats = index.retrieve_tuples([0, 2])
            assert stats.random_seeks == 1
            assert rows[2] == ('quo"te', "3")

    def test_bad_offset(self, relation, tmp_path):
        path = str(tmp_path / "table.dat")
        with TableFile.create(path, relation) as table:
            with pytest.raises(TupleIdError):
                table.seek_read(10_000)

    def test_create_overwrites_existing(self, relation, tmp_path):
        path = str(tmp_path / "table.dat")
        TableFile.create(path, relation).close()
        with TableFile.create(path, relation) as table:
            index = table.sparse_index()
            assert len(index) == 3
