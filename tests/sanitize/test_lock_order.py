"""Unit tests for the runtime lock-order sanitizer.

These construct :class:`SanitizedLock`/:class:`SanitizedRLock`
directly, so they exercise the instrumented path regardless of whether
``REPRO_SANITIZE=locks`` is set for the surrounding run.
"""

import os
import threading

import pytest

from repro.sanitize import (
    ForkHeldLockError,
    LockOrderError,
    SanitizedLock,
    SanitizedRLock,
    assert_no_reports,
    locks_enabled,
    make_lock,
    make_rlock,
    reports,
    reset_order_state,
    reset_reports,
)


@pytest.fixture(autouse=True)
def clean_sanitizer_state():
    reset_order_state()
    reset_reports()
    yield
    reset_order_state()
    reset_reports()


class TestOrderGraph:
    def test_consistent_order_passes(self):
        a = SanitizedLock("test.a")
        b = SanitizedLock("test.b")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_inverted_order_raises_before_deadlocking(self):
        # The seeded bug shape: manager->queue on one path, queue->
        # manager on the other. One thread is enough -- the sanitizer
        # checks the *order graph*, not an actual blocked acquire.
        manager = SanitizedLock("test.manager")
        queue = SanitizedLock("test.queue")
        with manager:
            with queue:
                pass
        with pytest.raises(LockOrderError) as excinfo:
            with queue:
                with manager:
                    pass
        message = str(excinfo.value)
        assert "test.manager" in message
        assert "test.queue" in message

    def test_three_lock_cycle_detected(self):
        a, b, c = (SanitizedLock(f"test.{x}") for x in "abc")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockOrderError):
            with c:
                with a:
                    pass

    def test_same_name_shares_one_graph_node(self):
        # Two instances with the same site name (e.g. every
        # ``tenants.queue`` lock) are one node: per-instance tracking
        # would miss cross-tenant inversions.
        q1 = SanitizedLock("test.queue")
        q2 = SanitizedLock("test.queue")
        m = SanitizedLock("test.manager")
        with m:
            with q1:
                pass
        with pytest.raises(LockOrderError):
            with q2:
                with m:
                    pass


class TestLockSemantics:
    def test_rlock_reentrant(self):
        lock = SanitizedRLock("test.rlock")
        with lock:
            with lock:
                assert lock.locked()

    def test_blocking_self_reacquire_raises_instead_of_hanging(self):
        lock = SanitizedLock("test.plain")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()

    def test_nonblocking_reacquire_returns_false_like_raw_lock(self):
        # threading.Condition._is_owned probes exactly this shape.
        lock = SanitizedLock("test.plain")
        with lock:
            assert lock.acquire(blocking=False) is False

    def test_condition_wait_notify_work_over_sanitized_lock(self):
        lock = SanitizedLock("test.cond")
        cond = threading.Condition(lock)  # type: ignore[arg-type]
        ready = []

        def producer():
            with cond:
                ready.append(1)
                cond.notify()

        thread = threading.Thread(target=producer)
        with cond:
            thread.start()
            assert cond.wait_for(lambda: ready, timeout=5.0)
        thread.join(timeout=5.0)

    def test_cross_thread_holds_tracked_independently(self):
        lock = SanitizedLock("test.cross")
        taken = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                taken.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert taken.wait(timeout=5.0)
        assert lock.acquire(blocking=False) is False
        release.set()
        thread.join(timeout=5.0)
        assert lock.acquire(blocking=False) is True
        lock.release()


class TestForkReports:
    def test_fork_while_other_thread_holds_lock_is_reported(self):
        lock = SanitizedLock("test.forkheld")
        taken = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                taken.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert taken.wait(timeout=5.0)
        try:
            pid = os.fork()
            if pid == 0:  # child: must see a fresh, unlocked lock
                ok = lock.acquire(blocking=False)
                os._exit(0 if ok else 1)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        finally:
            release.set()
            thread.join(timeout=5.0)
        assert any("test.forkheld" in entry for entry in reports())
        with pytest.raises(ForkHeldLockError):
            assert_no_reports()

    def test_fork_by_the_holding_thread_is_legitimate(self):
        # Process-mode fan-out forks while the *forking* thread holds
        # the tenant lock; the child resets it via the owner registry.
        # Only locks held by OTHER threads are undefined state.
        lock = SanitizedLock("test.forkown")
        with lock:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            os.waitpid(pid, 0)
        assert reports() == []
        assert_no_reports()


class TestFactories:
    def test_factories_return_raw_primitives_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not locks_enabled()
        assert not isinstance(make_lock("test.site"), SanitizedLock)
        assert not isinstance(make_rlock("test.site"), SanitizedRLock)

    def test_factories_return_wrappers_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "locks")
        assert locks_enabled()
        assert isinstance(make_lock("test.site"), SanitizedLock)
        assert isinstance(make_rlock("test.site"), SanitizedRLock)
