"""The at-fork owner registry, and the project-wide fork regression.

The regression test at the bottom is the satellite promised in this
PR: before the registry covered every project lock, forking while a
manager/queue lock was held handed the child a lock it could never
acquire (the PR 8 PartitionCache deadlock, generalized). Now the child
must be able to take every project lock immediately after fork.
"""

import multiprocessing
import os

import pytest

from repro.core.swan import SwanProfiler
from repro.sanitize import register_fork_owner, registered_owners
from repro.service.metrics import MetricsRegistry
from repro.shard.merger import GlobalProfileMerger
from repro.shard.router import ShardRouter
from repro.storage.plicache import PartitionCache
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.tenants.queue import IngestQueue

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)


def make_queue() -> IngestQueue:
    return IngestQueue(
        tenant_id="t0", max_pending_batches=4, max_pending_bytes=1 << 20
    )


def make_merger() -> GlobalProfileMerger:
    schema = Schema(["a", "b"])
    profilers = [
        SwanProfiler.profile(Relation(schema)) for _ in range(2)
    ]
    return GlobalProfileMerger(ShardRouter(2), profilers, n_columns=2)


class TestRegistry:
    def test_owner_must_expose_reset_hook(self):
        class NoHook:
            pass

        with pytest.raises(TypeError, match="_reset_locks_after_fork"):
            register_fork_owner(NoHook())

    def test_project_classes_register_on_construction(self):
        before = len(registered_owners())
        objects = [
            PartitionCache(),
            MetricsRegistry(),
            make_queue(),
        ]
        owners = registered_owners()
        assert len(owners) >= before + len(objects)
        registered = {id(owner) for owner in owners}
        for obj in objects:
            assert id(obj) in registered

    def test_dead_owners_are_pruned_from_snapshots(self):
        cache = PartitionCache()
        assert any(owner is cache for owner in registered_owners())
        marker = id(cache)
        del cache
        assert all(id(owner) != marker for owner in registered_owners())


@fork_only
class TestForkMidHoldRegression:
    def _assert_child_can_lock(self, obj, lock_attr):
        lock = getattr(obj, lock_attr)
        assert lock.acquire(blocking=False), "parent failed to take the lock"
        try:
            pid = os.fork()
            if pid == 0:  # child: registry reset must have freed it
                fresh = getattr(obj, lock_attr)
                got = fresh.acquire(blocking=False)
                os._exit(0 if got else 1)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0, (
                f"forked child inherited a held {type(obj).__name__}."
                f"{lock_attr}"
            )
        finally:
            lock.release()

    def test_plicache_lock_reset_in_child(self):
        self._assert_child_can_lock(PartitionCache(), "_lock")

    def test_queue_lock_reset_in_child(self):
        self._assert_child_can_lock(make_queue(), "_lock")

    def test_metrics_lock_reset_in_child(self):
        self._assert_child_can_lock(MetricsRegistry(), "_lock")

    def test_merger_lock_reset_in_child(self):
        self._assert_child_can_lock(make_merger(), "_lock")

    def test_queue_condition_rebuilt_around_fresh_lock(self):
        queue = make_queue()
        with queue._lock:
            pid = os.fork()
            if pid == 0:
                # The Condition must wrap the *reset* lock, or notify/
                # wait in the child would synchronize against nothing.
                same = queue._not_empty._lock is queue._lock
                got = queue._lock.acquire(blocking=False)
                os._exit(0 if (same and got) else 1)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
