"""Integration: every example script runs to completion.

Examples are part of the public surface; these tests execute them in a
subprocess exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


def test_quickstart_output_matches_paper():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    out = completed.stdout
    assert "{Phone}, {Name, Age}" in out
    assert "{Name, Age}, {Phone, Age}" in out
