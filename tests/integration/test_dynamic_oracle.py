"""Integration: SWAN stays exact under long mixed workloads.

This is the library's central correctness claim (DESIGN.md invariants
5-7): after any sequence of insert and delete batches, SWAN's profile
equals a static re-profile of the live relation.
"""

import random

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def run_mixed_workload(seed: int, steps: int, index_quota=None) -> None:
    rng = random.Random(seed)
    n_columns = rng.randint(2, 6)
    domain = rng.randint(2, 5)
    schema = Schema([f"c{index}" for index in range(n_columns)])
    rows = [
        tuple(str(rng.randrange(domain)) for _ in range(n_columns))
        for _ in range(rng.randint(2, 25))
    ]
    relation = Relation.from_rows(schema, rows)
    profiler = SwanProfiler.profile(
        relation, algorithm="bruteforce", index_quota=index_quota
    )
    for _ in range(steps):
        if rng.random() < 0.55:
            batch = [
                tuple(str(rng.randrange(domain)) for _ in range(n_columns))
                for _ in range(rng.randint(1, 4))
            ]
            profiler.handle_inserts(batch)
        else:
            live = list(relation.iter_ids())
            if len(live) <= 2:
                continue
            doomed = rng.sample(live, rng.randint(1, min(3, len(live) - 2)))
            profiler.handle_deletes(doomed)
        expected_mucs, expected_mnucs = discover_bruteforce(relation)
        snapshot = profiler.snapshot()
        assert sorted(snapshot.mucs) == sorted(expected_mucs)
        assert sorted(snapshot.mnucs) == sorted(expected_mnucs)


@pytest.mark.parametrize("seed", range(12))
def test_mixed_workload_matches_oracle(seed):
    run_mixed_workload(seed, steps=8)


@pytest.mark.parametrize("seed", range(6))
def test_mixed_workload_with_quota_indexes(seed):
    run_mixed_workload(100 + seed, steps=6, index_quota=6)


def test_insert_then_delete_roundtrip():
    """Inserting a batch and deleting exactly those tuples restores the
    original profile (DESIGN.md invariant 7)."""
    rng = random.Random(7)
    schema = Schema(["a", "b", "c"])
    rows = [
        tuple(str(rng.randrange(3)) for _ in range(3)) for _ in range(15)
    ]
    relation = Relation.from_rows(schema, rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    before = profiler.snapshot()
    first_id = relation.next_tuple_id
    batch = [tuple(str(rng.randrange(3)) for _ in range(3)) for _ in range(5)]
    profiler.handle_inserts(batch)
    profiler.handle_deletes(range(first_id, first_id + len(batch)))
    after = profiler.snapshot()
    assert after.mucs == before.mucs
    assert after.mnucs == before.mnucs


def test_grow_then_shrink_to_empty_profile():
    """Deleting everything but one tuple leaves the empty-combination
    profile; growing again recovers."""
    schema = Schema(["a", "b"])
    relation = Relation.from_rows(schema, [("1", "x"), ("2", "x"), ("1", "y")])
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    profiler.handle_deletes([0, 1])
    assert profiler.snapshot().mucs == (0,)
    assert profiler.snapshot().mnucs == ()
    profiler.handle_inserts([("1", "y"), ("3", "z")])
    expected = discover_bruteforce(relation)
    assert sorted(profiler.snapshot().mucs) == sorted(expected[0])
    assert sorted(profiler.snapshot().mnucs) == sorted(expected[1])
