"""Integration: every engine agrees on every dataset generator.

DESIGN.md invariant 9: brute force, GORDIAN, DUCC and HCA must report
identical profiles; the incremental systems must land on the same
profile after identical batches.
"""

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.baselines.ducc import discover_ducc
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian import discover_gordian
from repro.baselines.gordian_inc import GordianInc
from repro.baselines.hca import discover_hca
from repro.core.swan import SwanProfiler
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.tpch import lineitem_relation
from repro.datasets.uniprot import uniprot_relation
from repro.datasets.workload import delete_batch_ids, split_initial_and_inserts

GENERATORS = {
    "ncvoter": lambda: ncvoter_relation(300, 12, seed=11),
    "uniprot": lambda: uniprot_relation(300, 12, seed=11),
    "tpch": lambda: lineitem_relation(300, 12, seed=11),
}


@pytest.mark.parametrize("dataset", sorted(GENERATORS))
class TestStaticAgreement:
    def test_all_engines_agree(self, dataset):
        relation = GENERATORS[dataset]()
        reference = discover_bruteforce(relation)
        for engine in (discover_ducc, discover_gordian, discover_hca):
            got = engine(relation)
            assert sorted(got[0]) == sorted(reference[0]), engine.__name__
            assert sorted(got[1]) == sorted(reference[1]), engine.__name__


@pytest.mark.parametrize("dataset", sorted(GENERATORS))
class TestDynamicAgreement:
    def test_insert_batch_all_systems(self, dataset):
        relation = GENERATORS[dataset]()
        workload = split_initial_and_inserts(relation, 200, [0.1], seed=3)
        initial, batch = workload.initial, workload.insert_batches[0]
        mucs, mnucs = discover_bruteforce(initial)

        swan = SwanProfiler(initial.copy(), mucs, mnucs, maintain_plis=False)
        swan_profile = swan.handle_inserts(batch)

        gordian = GordianInc(initial, mnucs)
        gordian_mucs, gordian_mnucs = gordian.handle_inserts(batch)

        combined = initial.copy()
        combined.insert_many(batch)
        reference = discover_bruteforce(combined)

        assert sorted(swan_profile.mucs) == sorted(reference[0])
        assert sorted(swan_profile.mnucs) == sorted(reference[1])
        assert sorted(gordian_mucs) == sorted(reference[0])
        assert sorted(gordian_mnucs) == sorted(reference[1])

    def test_delete_batch_all_systems(self, dataset):
        relation = GENERATORS[dataset]()
        mucs, mnucs = discover_bruteforce(relation)
        doomed = delete_batch_ids(relation, 0.05, seed=4)
        doomed_rows = [relation.row(tuple_id) for tuple_id in doomed]

        swan = SwanProfiler(relation.copy(), mucs, mnucs)
        swan_profile = swan.handle_deletes(doomed)

        gordian = GordianInc(relation, mnucs)
        gordian_mucs, gordian_mnucs = gordian.handle_deletes(doomed_rows)

        ducc_relation = relation.copy()
        ducc = DuccInc(ducc_relation, mucs)
        ducc_mucs, ducc_mnucs = ducc.handle_deletes(doomed)

        shrunk = relation.copy()
        shrunk.delete_many(doomed)
        reference = discover_bruteforce(shrunk)

        assert sorted(swan_profile.mucs) == sorted(reference[0])
        assert sorted(swan_profile.mnucs) == sorted(reference[1])
        assert sorted(gordian_mucs) == sorted(reference[0])
        assert sorted(gordian_mnucs) == sorted(reference[1])
        assert sorted(ducc_mucs) == sorted(reference[0])
        assert sorted(ducc_mnucs) == sorted(reference[1])
