"""Integration: SWAN over a disk-resident initial dataset.

The paper keeps the initial dataset on disk and fetches candidate
tuples through the sparse index; these tests exercise that full path
via :class:`~repro.storage.table_file.TableFile`, including offset
maintenance across multiple accepted batches.
"""

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.storage.table_file import TableFile
from tests.conftest import random_relation, random_rows


def test_insert_batches_against_file_store(tmp_path):
    relation = random_relation(42, n_columns=4, n_rows=30, domain=4)
    path = str(tmp_path / "initial.dat")
    with TableFile.create(path, relation) as table:
        mucs, mnucs = discover_bruteforce(relation)
        profiler = SwanProfiler(
            relation, mucs, mnucs, table_file=table, maintain_plis=False
        )
        for seed in (43, 44, 45):
            batch = random_rows(seed, 4, 6, 4)
            profile = profiler.handle_inserts(batch)
            expected = discover_bruteforce(relation)
            assert sorted(profile.mucs) == sorted(expected[0])
            assert sorted(profile.mnucs) == sorted(expected[1])


def test_mixed_workload_against_file_store(tmp_path):
    relation = random_relation(50, n_columns=3, n_rows=25, domain=3)
    path = str(tmp_path / "initial.dat")
    with TableFile.create(path, relation) as table:
        mucs, mnucs = discover_bruteforce(relation)
        profiler = SwanProfiler(relation, mucs, mnucs, table_file=table)
        profiler.handle_inserts(random_rows(51, 3, 5, 3))
        profiler.handle_deletes([0, 2, 26])
        profiler.handle_inserts(random_rows(52, 3, 5, 3))
        expected = discover_bruteforce(relation)
        snapshot = profiler.snapshot()
        assert sorted(snapshot.mucs) == sorted(expected[0])
        assert sorted(snapshot.mnucs) == sorted(expected[1])


def test_file_store_retrieval_stats(tmp_path):
    relation = random_relation(7, n_columns=3, n_rows=50, domain=3)
    path = str(tmp_path / "initial.dat")
    with TableFile.create(path, relation) as table:
        mucs, mnucs = discover_bruteforce(relation)
        profiler = SwanProfiler(
            relation, mucs, mnucs, table_file=table, maintain_plis=False
        )
        profiler.handle_inserts(random_rows(8, 3, 10, 3))
        stats = profiler.last_insert_stats
        assert stats.retrieval.requested == stats.tuples_retrieved
