"""Unit tests for the markdown benchmark report writer."""

from repro.bench.harness import Measurement, ResultTable
from repro.bench.report import render_report, speedup_summary, table_to_markdown


def demo_table() -> ResultTable:
    table = ResultTable("fig1a", "demo figure", x_label="batch")
    table.record(Measurement("Ducc", "1%", 4.0))
    table.record(Measurement("Gordian-Inc", "1%", 8.0))
    table.record(Measurement("Swan", "1%", 0.5))
    table.record(Measurement("Ducc", "5%", 5.0))
    table.record(Measurement("Gordian-Inc", "5%", None, aborted=True))
    table.record(Measurement("Swan", "5%", 1.0))
    table.notes.append("demo note")
    return table


class TestTableToMarkdown:
    def test_structure(self):
        text = table_to_markdown(demo_table())
        assert text.startswith("### fig1a")
        assert "| batch | Ducc | Gordian-Inc | Swan |" in text
        assert "0.500 s" in text
        assert "aborted" in text
        assert "*demo note*" in text

    def test_speedups_included(self):
        text = table_to_markdown(demo_table())
        assert "Swan vs Ducc" in text


class TestSpeedupSummary:
    def test_ranges(self):
        lines = speedup_summary(demo_table())
        ducc_line = next(line for line in lines if "Ducc:" in line)
        assert "5.0x" in ducc_line  # 5.0 / 1.0 at 5%
        assert "8.0x" in ducc_line  # 4.0 / 0.5 at 1%

    def test_aborted_points_skipped(self):
        lines = speedup_summary(demo_table())
        gordian_line = next(line for line in lines if "Gordian" in line)
        # only the 1% point has both systems: a single ratio
        assert "16.0x" in gordian_line

    def test_unknown_figure_has_no_headlines(self):
        table = ResultTable("figZZ", "x", x_label="x")
        assert speedup_summary(table) == []


def test_render_report_joins_tables():
    text = render_report([demo_table()], "Results", preamble="config line")
    assert text.startswith("## Results")
    assert "config line" in text
    assert "### fig1a" in text
