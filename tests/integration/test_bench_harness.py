"""Unit/integration tests for the benchmark harness."""

import pytest

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import (
    BenchConfig,
    Measurement,
    ResultTable,
    SystemRunner,
)


class TestResultTable:
    def test_record_and_render(self):
        table = ResultTable("figX", "demo", x_label="batch")
        table.record(Measurement("Swan", "1%", 0.5))
        table.record(Measurement("Ducc", "1%", 5.0))
        table.record(Measurement("Ducc", "5%", None, aborted=True))
        text = table.render()
        assert "figX" in text
        assert "0.500" in text
        assert "aborted" in text

    def test_speedup(self):
        table = ResultTable("figX", "demo", x_label="batch")
        table.record(Measurement("Swan", "1%", 0.5))
        table.record(Measurement("Ducc", "1%", 5.0))
        assert table.speedup("Ducc", "Swan", "1%") == pytest.approx(10.0)
        assert table.speedup("Ducc", "Swan", "9%") is None

    def test_csv_rows(self):
        table = ResultTable("figX", "demo", x_label="batch")
        table.record(Measurement("Swan", "1%", 0.25))
        rows = table.to_csv_rows()
        assert rows[0] == ["figure", "x", "system", "seconds", "aborted"]
        assert rows[1][:3] == ["figX", "1%", "Swan"]


class TestSystemRunner:
    def test_measures_and_returns_result(self):
        runner = SystemRunner("sys", BenchConfig(timeout_s=10))
        measurement, result = runner.measure("x", lambda: 42)
        assert result == 42
        assert measurement.seconds is not None
        assert not measurement.aborted

    def test_aborts_after_budget_blown(self):
        runner = SystemRunner("sys", BenchConfig(timeout_s=0.0))
        first, result = runner.measure("x1", lambda: "slow")
        assert result == "slow"
        assert not first.aborted  # the blown point itself is reported
        second, result = runner.measure("x2", lambda: "never")
        assert second.aborted
        assert result is None


class TestBenchConfig:
    def test_rows_scaling(self):
        assert BenchConfig(scale=2.0).rows(100) == 200
        assert BenchConfig(scale=0.001).rows(100) == 50  # floor

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "3.0")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "9")
        config = BenchConfig.from_env()
        assert config.scale == 3.0
        assert config.timeout_s == 9.0


class TestFigureRegistry:
    def test_all_paper_figures_present(self):
        expected = {
            "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c",
            "fig3", "fig4a", "fig4b", "fig4c", "fig5", "fig6",
            "fig7a", "fig7b", "fig7c", "fig8",
        }
        assert expected <= set(FIGURES)

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    @pytest.mark.parametrize("figure", ["fig1c", "fig7c"])
    def test_tiny_run_has_no_disagreements(self, figure):
        config = BenchConfig(scale=0.04, timeout_s=30.0, seed=5)
        table = run_figure(figure, config)
        assert not any("DISAGREEMENT" in note for note in table.notes)
        assert table.seconds("Swan", table.x_values[0]) is not None
