"""Long mixed workloads: SWAN's state never drifts.

These run a hundred mixed operations through one profiler instance and
check the full profile against a static oracle at checkpoints -- the
kind of soak test that catches slow state corruption (stale index
entries, PLI leaks, sparse-index drift) that single-batch tests miss.
"""

import random

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.core.swan import SwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.mark.parametrize("seed", [11, 23])
def test_hundred_operation_soak(seed):
    rng = random.Random(seed)
    n_columns = 5
    schema = Schema([f"c{i}" for i in range(n_columns)])
    rows = [
        tuple(str(rng.randrange(4)) for _ in range(n_columns)) for _ in range(30)
    ]
    relation = Relation.from_rows(schema, rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce", index_quota=4)
    for step in range(100):
        live = list(relation.iter_ids())
        if rng.random() < 0.6 or len(live) <= 3:
            batch = [
                tuple(str(rng.randrange(4)) for _ in range(n_columns))
                for _ in range(rng.randint(1, 3))
            ]
            profiler.handle_inserts(batch)
        else:
            doomed = rng.sample(live, rng.randint(1, min(4, len(live) - 2)))
            profiler.handle_deletes(doomed)
        if step % 10 == 9:
            expected = discover_bruteforce(relation)
            snapshot = profiler.snapshot()
            assert sorted(snapshot.mucs) == sorted(expected[0]), step
            assert sorted(snapshot.mnucs) == sorted(expected[1]), step


def test_index_pool_stays_consistent_after_churn():
    """Value indexes must reflect exactly the live tuples after many
    insert/delete rounds."""
    rng = random.Random(3)
    schema = Schema(["a", "b", "c"])
    rows = [tuple(str(rng.randrange(5)) for _ in range(3)) for _ in range(20)]
    relation = Relation.from_rows(schema, rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    for _ in range(30):
        live = list(relation.iter_ids())
        if rng.random() < 0.5:
            profiler.handle_inserts(
                [tuple(str(rng.randrange(5)) for _ in range(3))]
            )
        elif len(live) > 3:
            profiler.handle_deletes([rng.choice(live)])
    for column in profiler.indexed_columns:
        index = profiler._index_pool.get(column)
        expected: dict = {}
        for tuple_id, value in relation.column_values(column):
            expected.setdefault(value, set()).add(tuple_id)
        for value, ids in expected.items():
            assert index.lookup(value) == ids
        assert index.n_entries() == sum(len(ids) for ids in expected.values())


def test_pli_pool_stays_consistent_after_churn():
    """Maintained per-column PLIs must equal freshly built ones."""
    from repro.storage.pli import PositionListIndex

    rng = random.Random(9)
    schema = Schema(["a", "b"])
    rows = [tuple(str(rng.randrange(3)) for _ in range(2)) for _ in range(15)]
    relation = Relation.from_rows(schema, rows)
    profiler = SwanProfiler.profile(relation, algorithm="bruteforce")
    for _ in range(40):
        live = list(relation.iter_ids())
        if rng.random() < 0.5:
            profiler.handle_inserts([tuple(str(rng.randrange(3)) for _ in range(2))])
        elif len(live) > 3:
            profiler.handle_deletes(rng.sample(live, rng.randint(1, 2)))
    for column, maintained in profiler._plis.items():
        rebuilt = PositionListIndex.for_column(relation, column)
        assert set(maintained.clusters()) == set(rebuilt.clusters()), column
