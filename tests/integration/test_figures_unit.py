"""Unit-level tests for the figure runners' plumbing."""

from repro.bench.figures import _check_agreement, _generate
from repro.bench.harness import ResultTable


class TestCheckAgreement:
    def test_agreeing_systems_add_no_note(self):
        table = ResultTable("figT", "t", x_label="x")
        _check_agreement(table, "1%", {"A": [1, 2], "B": [1, 2]})
        assert table.notes == []

    def test_disagreement_noted(self):
        table = ResultTable("figT", "t", x_label="x")
        _check_agreement(table, "1%", {"A": [1, 2], "B": [1, 3]})
        assert len(table.notes) == 1
        assert "DISAGREEMENT" in table.notes[0]

    def test_single_system_trivially_agrees(self):
        table = ResultTable("figT", "t", x_label="x")
        _check_agreement(table, "1%", {"A": [1]})
        assert table.notes == []


class TestGenerate:
    def test_dataset_dispatch(self):
        for dataset in ("ncvoter", "uniprot", "tpch"):
            relation = _generate(dataset, 50, 10, seed=1)
            assert len(relation) == 50
            assert relation.n_columns == 10

    def test_deterministic_per_seed(self):
        one = _generate("ncvoter", 40, 8, seed=5)
        two = _generate("ncvoter", 40, 8, seed=5)
        assert list(one.iter_rows()) == list(two.iter_rows())
