"""Tests for replaying and comparing recorded benchmark runs."""

import csv

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.replay import compare_runs, load_measurements


def write_csv(path, rows):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "x", "system", "seconds", "aborted"])
        writer.writerows(rows)


@pytest.fixture
def recorded(tmp_path):
    path = str(tmp_path / "baseline.csv")
    write_csv(
        path,
        [
            ["fig1a", "1%", "Swan", "0.100000", "0"],
            ["fig1a", "1%", "Ducc", "4.000000", "0"],
            ["fig1a", "5%", "Swan", "0.200000", "0"],
            ["fig1a", "5%", "Gordian-Inc", "", "1"],
            ["fig7a", "1%", "Swan", "0.050000", "0"],
        ],
    )
    return path


class TestLoadMeasurements:
    def test_rebuilds_tables(self, recorded):
        tables = load_measurements(recorded)
        assert [table.figure for table in tables] == ["fig1a", "fig7a"]
        fig1a = tables[0]
        assert fig1a.seconds("Swan", "1%") == pytest.approx(0.1)
        assert fig1a.seconds("Gordian-Inc", "5%") is None
        assert fig1a.cells[("Gordian-Inc", "5%")].aborted

    def test_rejects_foreign_csv(self, tmp_path):
        path = str(tmp_path / "other.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_measurements(path)

    def test_speedups_recoverable(self, recorded):
        table = load_measurements(recorded)[0]
        assert table.speedup("Ducc", "Swan", "1%") == pytest.approx(40.0)


class TestCompareRuns:
    def test_flags_slowdowns_only(self, recorded, tmp_path):
        candidate = str(tmp_path / "candidate.csv")
        write_csv(
            candidate,
            [
                ["fig1a", "1%", "Swan", "0.300000", "0"],   # 3x slower
                ["fig1a", "1%", "Ducc", "2.000000", "0"],   # faster: ignored
                ["fig1a", "5%", "Swan", "0.210000", "0"],   # within threshold
                ["fig7a", "1%", "Swan", "0.050000", "0"],
            ],
        )
        findings = compare_runs(recorded, candidate)
        rendered = [finding.render() for finding in findings]
        assert any("fig1a Swan @ 1%" in line and "3.00x" in line for line in rendered)
        assert not any("Ducc" in line for line in rendered)
        # the aborted baseline point vanished from the candidate
        assert any("Gordian-Inc" in line for line in rendered) is False

    def test_appearing_point_reported(self, recorded, tmp_path):
        candidate = str(tmp_path / "candidate.csv")
        write_csv(candidate, [["fig1a", "1%", "NewSys", "1.000000", "0"]])
        findings = compare_runs(recorded, candidate)
        assert any(finding.system == "NewSys" for finding in findings)


class TestCliIntegration:
    def test_replay_renders(self, recorded, capsys):
        assert bench_main(["--replay", recorded, "--chart"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "S=Swan" in out

    def test_replay_markdown(self, recorded, capsys, tmp_path):
        md = str(tmp_path / "replayed.md")
        assert bench_main(["--replay", recorded, "--markdown", md]) == 0
        with open(md) as handle:
            assert "### fig1a" in handle.read()

    def test_compare_exit_codes(self, recorded, tmp_path, capsys):
        same = str(tmp_path / "same.csv")
        write_csv(
            same,
            [
                ["fig1a", "1%", "Swan", "0.100000", "0"],
                ["fig1a", "1%", "Ducc", "4.000000", "0"],
                ["fig1a", "5%", "Swan", "0.200000", "0"],
                ["fig1a", "5%", "Gordian-Inc", "", "1"],
                ["fig7a", "1%", "Swan", "0.050000", "0"],
            ],
        )
        assert bench_main(["--compare", recorded, same]) == 0
        slower = str(tmp_path / "slower.csv")
        write_csv(slower, [["fig1a", "1%", "Swan", "9.000000", "0"]])
        assert bench_main(["--compare", recorded, slower]) == 1
