"""Unit tests for the ASCII chart renderer."""

from repro.bench.chart import render_chart
from repro.bench.harness import Measurement, ResultTable


def demo_table() -> ResultTable:
    table = ResultTable("figX", "demo", x_label="batch")
    table.record(Measurement("Swan", "1%", 0.05))
    table.record(Measurement("Ducc", "1%", 5.0))
    table.record(Measurement("Swan", "5%", 0.2))
    table.record(Measurement("Ducc", "5%", None, aborted=True))
    return table


class TestRenderChart:
    def test_contains_title_and_legend(self):
        text = render_chart(demo_table())
        assert text.startswith("figX: demo")
        assert "S=Swan" in text
        assert "D=Ducc" in text

    def test_orders_of_magnitude_separate_rows(self):
        lines = render_chart(demo_table()).splitlines()
        swan_rows = [i for i, line in enumerate(lines) if "S" in line.split("|")[-1]]
        ducc_rows = [
            i
            for i, line in enumerate(lines)
            if "|" in line and "D" in line.split("|")[-1] and "aborted" not in line
        ]
        assert min(ducc_rows) < min(swan_rows)  # Ducc plots higher (slower)

    def test_aborted_points_on_aborted_row(self):
        text = render_chart(demo_table())
        aborted_lines = [line for line in text.splitlines() if "aborted" in line]
        assert len(aborted_lines) == 1
        assert "D" in aborted_lines[0]

    def test_x_axis_labels_present(self):
        text = render_chart(demo_table())
        assert "1%" in text
        assert "5%" in text

    def test_empty_table(self):
        table = ResultTable("figY", "empty", x_label="x")
        assert "no data" in render_chart(table)

    def test_distinct_letters_for_similar_names(self):
        table = ResultTable("figZ", "letters", x_label="x")
        table.record(Measurement("Ducc", 1, 1.0))
        table.record(Measurement("Ducc-Inc", 1, 2.0))
        table.record(Measurement("DBMS-X", 1, 3.0))
        text = render_chart(table)
        legend = text.splitlines()[-1]
        letters = [entry.split("=")[0] for entry in legend.split()]
        assert len(set(letters)) == 3
