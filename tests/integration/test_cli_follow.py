"""Integration test for repro-profile --follow (stdin streaming)."""

import subprocess
import sys

from tests.conftest import random_relation, random_rows


def test_follow_mode_streams_batches(tmp_path):
    relation = random_relation(31, n_columns=3, n_rows=40, domain=5)
    csv_path = str(tmp_path / "initial.csv")
    relation.to_csv(csv_path)
    stream_rows = random_rows(32, 3, 25, 5)
    stdin_text = "\n".join(",".join(row) for row in stream_rows) + "\n"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            csv_path,
            "--algorithm",
            "bruteforce",
            "--follow",
            "--batch-size",
            "10",
        ],
        input=stdin_text,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-1500:]
    out = completed.stdout
    assert "batch 1: 10 rows" in out
    assert "batch 2: 10 rows" in out
    assert "batch 3: 5 rows" in out  # trailing partial batch
    assert "done: 65 rows total" in out


def test_follow_skips_malformed_rows(tmp_path):
    relation = random_relation(33, n_columns=3, n_rows=10, domain=4)
    csv_path = str(tmp_path / "initial.csv")
    relation.to_csv(csv_path)
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", csv_path,
            "--algorithm", "bruteforce", "--follow", "--batch-size", "2",
        ],
        input="1,2\n0,1,2\n3,4,5\n",
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0
    assert "skipping row with 2 fields" in completed.stderr
    assert "batch 1: 2 rows" in completed.stdout
