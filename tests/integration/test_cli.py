"""Integration tests for the two command-line interfaces."""

import pytest

from repro.bench.cli import main as bench_main
from repro.cli import main as profile_main
from tests.conftest import random_relation


@pytest.fixture
def csv_path(tmp_path):
    relation = random_relation(3, n_columns=4, n_rows=30, domain=4)
    path = str(tmp_path / "data.csv")
    relation.to_csv(path)
    return path


class TestProfileCli:
    def test_profiles_csv(self, csv_path, capsys):
        assert profile_main([csv_path, "--algorithm", "bruteforce"]) == 0
        out = capsys.readouterr().out
        assert "minimal uniques" in out
        assert "maximal non-uniques" in out

    def test_verify_flag(self, csv_path, capsys):
        assert profile_main([csv_path, "--verify"]) == 0
        assert "verification passed" in capsys.readouterr().out

    def test_columns_restriction(self, csv_path, capsys):
        assert profile_main([csv_path, "--columns", "2"]) == 0
        assert "x 2 columns" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            profile_main([csv_path, "--algorithm", "nope"])

    def test_max_print_truncates(self, csv_path, capsys):
        assert profile_main([csv_path, "--max-print", "1"]) == 0
        assert "more" in capsys.readouterr().out

    def test_save_profile(self, csv_path, capsys, tmp_path):
        from repro.profiling.persistence import load_profile

        out = str(tmp_path / "profile.json")
        assert profile_main([csv_path, "--save-profile", out]) == 0
        stored = load_profile(out)
        assert stored.profile.mucs or stored.profile.mnucs

    def test_fd_flag(self, csv_path, capsys):
        assert profile_main([csv_path, "--fds", "2"]) == 0
        assert "functional dependencies" in capsys.readouterr().out

    def test_summary_flag(self, csv_path, capsys):
        assert profile_main([csv_path, "--summary", "--fds", "1"]) == 0
        out = capsys.readouterr().out
        assert "columns (distinct / selectivity):" in out
        assert "candidate keys" in out

    def test_summary_with_save(self, csv_path, capsys, tmp_path):
        from repro.profiling.persistence import load_profile

        out = str(tmp_path / "p.json")
        assert profile_main([csv_path, "--summary", "--save-profile", out]) == 0
        assert load_profile(out).columns


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "fig8" in out

    def test_no_args_lists(self, capsys):
        assert bench_main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["nope"])

    def test_tiny_figure_run(self, capsys, tmp_path):
        csv_out = str(tmp_path / "results.csv")
        md_out = str(tmp_path / "report.md")
        code = bench_main(
            [
                "fig1c", "--scale", "0.05", "--timeout", "30",
                "--csv", csv_out, "--markdown", md_out,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig1c" in out
        assert "Swan" in out
        assert "DISAGREEMENT" not in out
        with open(csv_out) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0].startswith("figure,")
        assert len(lines) > 4
        with open(md_out) as handle:
            report = handle.read()
        assert "### fig1c" in report
        assert "| batch_size |" in report
