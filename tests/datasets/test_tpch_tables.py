"""Tests for the consistent (lineitem, orders) TPC-H pair."""

import pytest

from repro.datasets.tpch import ORDERS_COLUMNS, tpch_tables
from repro.ind.unary import (
    discover_unary_inds,
    foreign_key_candidates,
    rank_foreign_keys,
)


@pytest.fixture(scope="module")
def tables():
    return tpch_tables(600, seed=4)


class TestOrders:
    def test_schema(self, tables):
        __, orders = tables
        assert orders.schema.names == tuple(ORDERS_COLUMNS)

    def test_orderkey_is_key(self, tables):
        __, orders = tables
        assert not orders.duplicate_exists(orders.schema.mask(["o_orderkey"]))

    def test_one_order_per_lineitem_orderkey(self, tables):
        lineitem, orders = tables
        lineitem_keys = {
            value for _, value in lineitem.column_values(
                lineitem.schema.index_of("l_orderkey")
            )
        }
        order_keys = {
            value for _, value in orders.column_values(
                orders.schema.index_of("o_orderkey")
            )
        }
        assert lineitem_keys == order_keys

    def test_orderdate_precedes_shipdate(self, tables):
        lineitem, orders = tables
        order_date = {
            row[0]: row[4] for row in orders.iter_rows()
        }
        ship_col = lineitem.schema.index_of("l_shipdate")
        key_col = lineitem.schema.index_of("l_orderkey")
        for row in lineitem.iter_rows():
            assert order_date[row[key_col]] < row[ship_col]

    def test_deterministic(self):
        first = tpch_tables(200, seed=9)
        second = tpch_tables(200, seed=9)
        assert list(first[1].iter_rows()) == list(second[1].iter_rows())


class TestForeignKeyDiscovery:
    def test_referential_integrity_discovered(self, tables):
        lineitem, orders = tables
        inds = discover_unary_inds(lineitem, orders)
        key_col = lineitem.schema.index_of("l_orderkey")
        order_col = orders.schema.index_of("o_orderkey")
        assert any(
            ind.lhs == key_col and ind.rhs == order_col for ind in inds
        )

    def test_true_fk_ranks_first(self, tables):
        lineitem, orders = tables
        candidates = foreign_key_candidates(lineitem, orders)
        ranked = rank_foreign_keys(lineitem, orders, candidates)
        best, coverage = ranked[0]
        assert lineitem.schema.names[best.lhs] == "l_orderkey"
        assert coverage == 1.0
