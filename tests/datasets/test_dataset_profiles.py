"""Profile-shape tests for the NCVoter / Uniprot / TPC-H stand-ins."""

import pytest

from repro.datasets.ncvoter import ncvoter_relation, ncvoter_specs
from repro.datasets.tpch import LINEITEM_COLUMNS, lineitem_relation
from repro.datasets.uniprot import uniprot_relation, uniprot_specs


class TestNcvoter:
    def test_column_counts(self):
        assert len(ncvoter_specs(94)) == 94
        assert len(ncvoter_specs(40)) == 40
        with pytest.raises(ValueError):
            ncvoter_specs(95)

    def test_unique_names(self):
        names = [spec.name for spec in ncvoter_specs(94)]
        assert len(set(names)) == 94

    def test_no_single_column_key(self):
        relation = ncvoter_relation(1000, 40, seed=0)
        assert all(
            relation.cardinality(column) < len(relation)
            for column in range(relation.n_columns)
        )

    def test_deterministic(self):
        one = ncvoter_relation(200, 10, seed=5)
        two = ncvoter_relation(200, 10, seed=5)
        assert list(one.iter_rows()) == list(two.iter_rows())

    def test_functional_dependency_county_desc(self):
        relation = ncvoter_relation(500, 40, seed=0)
        county = relation.schema.index_of("county_id")
        desc = relation.schema.index_of("county_desc")
        mapping = {}
        for row in relation.iter_rows():
            assert mapping.setdefault(row[county], row[desc]) == row[desc]

    def test_dominated_flag_column(self):
        relation = ncvoter_relation(1000, 40, seed=0)
        column = relation.schema.index_of("absent_ind")
        values = [row[column] for row in relation.iter_rows()]
        top = max(values.count(value) for value in set(values))
        assert top > 900


class TestUniprot:
    def test_column_counts(self):
        assert len(uniprot_specs(223)) == 223
        names = [spec.name for spec in uniprot_specs(223)]
        assert len(set(names)) == 223

    def test_duplicate_heavy_regime(self):
        """Uniprot must be more duplicate-dense than NCVoter: lower
        mean column selectivity over the first 40 columns."""
        uniprot = uniprot_relation(1000, 40, seed=0)
        ncvoter = ncvoter_relation(1000, 40, seed=0)

        def mean_selectivity(relation):
            return sum(
                relation.cardinality(column) / len(relation)
                for column in range(relation.n_columns)
            ) / relation.n_columns

        assert mean_selectivity(uniprot) < mean_selectivity(ncvoter)

    def test_entry_name_depends_on_accession(self):
        relation = uniprot_relation(300, 5, seed=0)
        accession = relation.schema.index_of("accession")
        entry = relation.schema.index_of("entry_name")
        mapping = {}
        for row in relation.iter_rows():
            assert mapping.setdefault(row[accession], row[entry]) == row[entry]


class TestTpch:
    def test_schema(self):
        relation = lineitem_relation(100)
        assert relation.schema.names == tuple(LINEITEM_COLUMNS)
        assert len(relation) == 100

    def test_orderkey_linenumber_is_key(self):
        relation = lineitem_relation(2000, seed=3)
        mask = relation.schema.mask(["l_orderkey", "l_linenumber"])
        assert not relation.duplicate_exists(mask)

    def test_orderkey_alone_is_not_key(self):
        relation = lineitem_relation(2000, seed=3)
        mask = relation.schema.mask(["l_orderkey"])
        assert relation.duplicate_exists(mask)

    def test_linenumbers_within_range(self):
        relation = lineitem_relation(500, seed=1)
        column = relation.schema.index_of("l_linenumber")
        values = {int(row[column]) for row in relation.iter_rows()}
        assert values <= set(range(1, 8))

    def test_returnflag_consistent_with_shipdate(self):
        relation = lineitem_relation(500, seed=2)
        flag_col = relation.schema.index_of("l_returnflag")
        date_col = relation.schema.index_of("l_shipdate")
        for row in relation.iter_rows():
            if row[date_col] > "1995-06-17":
                assert row[flag_col] == "N"

    def test_column_prefix(self):
        relation = lineitem_relation(100, n_columns=4, seed=0)
        assert relation.n_columns == 4
        with pytest.raises(ValueError):
            lineitem_relation(10, n_columns=17)

    def test_deterministic(self):
        one = lineitem_relation(150, seed=9)
        two = lineitem_relation(150, seed=9)
        assert list(one.iter_rows()) == list(two.iter_rows())
