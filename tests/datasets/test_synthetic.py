"""Unit tests for the synthetic dataset generator."""

import random

import pytest

from repro.datasets.synthetic import (
    ColumnSpec,
    ZipfSampler,
    derive_column,
    generate_column,
    generate_relation,
)


class TestColumnSpec:
    def test_fractional_cardinality(self):
        spec = ColumnSpec("c", 0.5)
        assert spec.resolved_cardinality(100) == 50

    def test_absolute_cardinality(self):
        spec = ColumnSpec("c", 30)
        assert spec.resolved_cardinality(100) == 30

    def test_cardinality_capped_by_rows(self):
        spec = ColumnSpec("c", 500)
        assert spec.resolved_cardinality(100) == 100

    def test_minimum_one(self):
        spec = ColumnSpec("c", 0.0001)
        assert spec.resolved_cardinality(100) == 1


class TestZipfSampler:
    def test_head_heavier_than_tail(self):
        rng = random.Random(0)
        sampler = ZipfSampler(50, skew=1.2)
        draws = [sampler.sample(rng) for _ in range(5000)]
        head = sum(1 for draw in draws if draw == 0)
        tail = sum(1 for draw in draws if draw == 49)
        assert head > tail * 3

    def test_all_indices_in_range(self):
        rng = random.Random(1)
        sampler = ZipfSampler(10, skew=1.0)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(1000))


class TestGenerateColumn:
    def test_exact_cardinality(self):
        spec = ColumnSpec("c", 20, skew=1.0)
        cells = generate_column(spec, 500, random.Random(0), "v_")
        assert len(cells) == 500
        assert len(set(cells)) == 20

    def test_dominant_fraction(self):
        spec = ColumnSpec("c", 10, skew=0.5, dominant=0.9)
        cells = generate_column(spec, 2000, random.Random(0), "v_")
        top = max(cells.count(value) for value in set(cells))
        assert top > 1600

    def test_uniform_when_skew_zero(self):
        spec = ColumnSpec("c", 4, skew=0.0)
        cells = generate_column(spec, 4000, random.Random(0), "v_")
        counts = sorted(cells.count(f"v_{i}") for i in range(4))
        assert counts[0] > 700  # roughly uniform


class TestDeriveColumn:
    def test_functional_dependency_holds(self):
        parent = [f"p{i % 7}" for i in range(100)]
        spec = ColumnSpec("child", 3, derived_from="parent")
        child = derive_column(spec, parent, 100, "c_")
        mapping = {}
        for parent_value, child_value in zip(parent, child):
            assert mapping.setdefault(parent_value, child_value) == child_value

    def test_cardinality_bounded(self):
        parent = [f"p{i % 50}" for i in range(200)]
        spec = ColumnSpec("child", 5, derived_from="parent")
        child = derive_column(spec, parent, 200, "c_")
        assert len(set(child)) <= 5

    def test_dominant_folds_to_first_value(self):
        parent = [f"p{i}" for i in range(1000)]
        spec = ColumnSpec("child", 100, derived_from="parent", dominant=0.95)
        child = derive_column(spec, parent, 1000, "c_")
        assert child.count("c_0") > 850


class TestGenerateRelation:
    def test_deterministic(self):
        specs = [ColumnSpec("a", 0.5), ColumnSpec("b", 5)]
        one = generate_relation(specs, 50, seed=3)
        two = generate_relation(specs, 50, seed=3)
        assert list(one.iter_rows()) == list(two.iter_rows())

    def test_different_seeds_differ(self):
        specs = [ColumnSpec("a", 0.9)]
        one = generate_relation(specs, 50, seed=1)
        two = generate_relation(specs, 50, seed=2)
        assert list(one.iter_rows()) != list(two.iter_rows())

    def test_derived_requires_preceding_parent(self):
        specs = [ColumnSpec("child", 3, derived_from="parent")]
        with pytest.raises(ValueError, match="does not precede"):
            generate_relation(specs, 10)

    def test_schema_names(self):
        specs = [ColumnSpec("a", 2), ColumnSpec("b", 2, derived_from="a")]
        relation = generate_relation(specs, 10)
        assert relation.schema.names == ("a", "b")
        assert len(relation) == 10
