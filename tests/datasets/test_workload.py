"""Unit tests for workload builders."""

import pytest

from repro.datasets.workload import (
    delete_batch_ids,
    interleaved_workload,
    split_initial_and_inserts,
)
from repro.errors import WorkloadError
from tests.conftest import random_relation


class TestSplitInitialAndInserts:
    def test_sizes(self):
        relation = random_relation(0, n_columns=3, n_rows=100, domain=5)
        workload = split_initial_and_inserts(relation, 50, [0.1, 0.2], seed=1)
        assert len(workload.initial) == 50
        assert [len(batch) for batch in workload.insert_batches] == [5, 10]
        assert workload.n_inserts == 15

    def test_batches_disjoint_from_initial(self):
        relation = random_relation(1, n_columns=2, n_rows=60, domain=50)
        workload = split_initial_and_inserts(relation, 30, [0.5], seed=2)
        combined = list(workload.initial.iter_rows()) + list(
            workload.insert_batches[0]
        )
        original = sorted(relation.iter_rows())
        assert sorted(combined) == sorted(original[: len(combined)]) or len(
            combined
        ) == 45

    def test_deterministic(self):
        relation = random_relation(2, n_columns=3, n_rows=80, domain=5)
        one = split_initial_and_inserts(relation, 40, [0.2], seed=9)
        two = split_initial_and_inserts(relation, 40, [0.2], seed=9)
        assert list(one.initial.iter_rows()) == list(two.initial.iter_rows())
        assert one.insert_batches == two.insert_batches

    def test_insufficient_rows_rejected(self):
        relation = random_relation(3, n_columns=2, n_rows=20, domain=5)
        with pytest.raises(WorkloadError):
            split_initial_and_inserts(relation, 18, [0.5])


class TestDeleteBatchIds:
    def test_fraction_of_live_rows(self):
        relation = random_relation(4, n_columns=2, n_rows=100, domain=5)
        doomed = delete_batch_ids(relation, 0.1, seed=0)
        assert len(doomed) == 10
        assert all(relation.is_live(tuple_id) for tuple_id in doomed)
        assert doomed == sorted(doomed)

    def test_respects_tombstones(self):
        relation = random_relation(5, n_columns=2, n_rows=50, domain=5)
        relation.delete_many(range(25))
        doomed = delete_batch_ids(relation, 0.2, seed=0)
        assert len(doomed) == 5
        assert all(tuple_id >= 25 for tuple_id in doomed)

    def test_invalid_fraction(self):
        relation = random_relation(6, n_columns=2, n_rows=10, domain=5)
        with pytest.raises(WorkloadError):
            delete_batch_ids(relation, 1.5)


class TestInterleavedWorkload:
    def test_script_shape(self):
        relation = random_relation(7, n_columns=3, n_rows=100, domain=5)
        initial, operations = interleaved_workload(
            relation, 40, n_operations=10, seed=3
        )
        assert len(initial) == 40
        assert len(operations) == 10
        assert all(kind in ("insert", "delete") for kind, _ in operations)

    def test_initial_too_large(self):
        relation = random_relation(8, n_columns=2, n_rows=10, domain=5)
        with pytest.raises(WorkloadError):
            interleaved_workload(relation, 20, n_operations=1)
