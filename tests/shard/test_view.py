"""Unit tests for the read-only global relation view."""

import pytest

from repro.errors import ProfileStateError, TupleIdError
from repro.shard.router import ShardRouter
from repro.shard.view import ShardedRelationView
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def schema() -> Schema:
    return Schema(["a", "b"])


@pytest.fixture
def view(schema: Schema) -> ShardedRelationView:
    """Six rows round-robined across two shards; global ID i holds
    row (i, i % 3)."""
    router = ShardRouter(2)
    parts = [Relation(schema), Relation(schema)]
    for global_id in range(6):
        parts[router.shard_of(global_id)].insert((global_id, global_id % 3))
    return ShardedRelationView(schema, router, parts)


class TestConstruction:
    def test_part_count_must_match_router(self, schema):
        with pytest.raises(ValueError, match="expects 2 shards"):
            ShardedRelationView(schema, ShardRouter(2), [Relation(schema)])


class TestReadOnly:
    def test_mutators_raise(self, view):
        with pytest.raises(ProfileStateError, match="read-only"):
            view.insert((9, 9))
        with pytest.raises(ProfileStateError, match="read-only"):
            view.insert_many([(9, 9)])
        with pytest.raises(ProfileStateError, match="read-only"):
            view.delete(0)
        with pytest.raises(ProfileStateError, match="read-only"):
            view.delete_many([0])
        with pytest.raises(ProfileStateError, match="read-only"):
            view.compact_in_place()

    def test_code_level_api_unavailable(self, view):
        with pytest.raises(ProfileStateError, match="not comparable"):
            view.encoding
        with pytest.raises(ProfileStateError, match="not comparable"):
            view.codes_for_ids(0, None)


class TestPointAccess:
    def test_rows_route_by_global_id(self, view):
        for global_id in range(6):
            assert view.row(global_id) == (global_id, global_id % 3)
            assert view.value(global_id, 0) == global_id

    def test_out_of_range_ids_rejected(self, view):
        with pytest.raises(TupleIdError, match="does not exist"):
            view.row(6)
        with pytest.raises(TupleIdError, match="does not exist"):
            view.row(-1)

    def test_deleted_row_rejected_but_alive_elsewhere(self, view):
        view.parts[0].delete(1)  # global ID 2
        assert not view.is_live(2)
        assert view.is_live(3)
        with pytest.raises(TupleIdError, match="was deleted"):
            view.row(2)

    def test_project(self, view):
        assert view.project(4, 0b10) == (1,)


class TestSizing:
    def test_next_tuple_id_is_sum_of_parts(self, view):
        assert view.next_tuple_id == 6
        view.parts[0].insert((9, 9))  # becomes global ID 6
        assert view.next_tuple_id == 7

    def test_len_and_tombstones(self, view):
        assert len(view) == 6
        view.parts[1].delete(0)
        assert len(view) == 5
        assert view.tombstone_count == 1
        assert view.storage_rows == 6
        assert view.live_fraction == pytest.approx(5 / 6)


class TestIteration:
    def test_iter_ids_ascending_global(self, view):
        assert list(view.iter_ids()) == list(range(6))

    def test_iteration_skips_deleted(self, view):
        view.parts[1].delete(1)  # global ID 3
        assert list(view.iter_ids()) == [0, 1, 2, 4, 5]
        assert [row for _, row in view.iter_items()] == [
            (0, 0), (1, 1), (2, 2), (4, 1), (5, 2),
        ]

    def test_live_ids_array_matches_iter_ids(self, view):
        view.parts[0].delete(2)  # global ID 4
        assert list(view.live_ids_array()) == list(view.iter_ids())

    def test_column_values_in_global_order(self, view):
        assert [value for _, value in view.column_values(1)] == [
            0, 1, 2, 0, 1, 2,
        ]


class TestGlobalQueries:
    def test_cardinality_across_shards(self, view):
        assert view.cardinality(0) == 6
        assert view.cardinality(1) == 3

    def test_duplicate_detection_spans_shards(self, view):
        # Column b repeats across shards, column a never does.
        assert view.duplicate_exists(0b10)
        assert not view.duplicate_exists(0b01)

    def test_group_duplicates_returns_global_ids(self, view):
        groups = view.group_duplicates(0b10)
        assert groups == {(0,): [0, 3], (1,): [1, 4], (2,): [2, 5]}

    def test_copy_preserves_ids_and_tombstones(self, view):
        view.parts[0].delete(1)  # global ID 2
        clone = view.copy()
        assert list(clone.iter_items()) == list(view.iter_items())
        assert clone.next_tuple_id == view.next_tuple_id
        assert not clone.is_live(2)

    def test_restrict_columns(self, view):
        projected = view.restrict_columns(1)
        assert projected.n_columns == 1
        assert len(projected) == 6
