"""Unit tests for the sharded profiler facade and the exact merge."""

import multiprocessing
import random

import pytest

from repro.core.swan import SwanProfiler
from repro.errors import ProfileStateError
from repro.shard import ShardedSwanProfiler
from repro.storage.relation import Relation
from repro.storage.schema import Schema

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process fan-out needs the fork start method",
)

N_COLUMNS = 5


def make_rows(count, seed=42, spread=6):
    rng = random.Random(seed)
    return [
        tuple(rng.randint(0, spread) for _ in range(N_COLUMNS))
        for _ in range(count)
    ]


def make_relation(rows):
    schema = Schema([f"c{index}" for index in range(N_COLUMNS)])
    return Relation.from_rows(schema, rows)


def drive_both(flat, sharded, seed=7, steps=6):
    """Replay the same mixed workload on both; assert per-op equality."""
    rng = random.Random(seed)
    for step in range(steps):
        if step % 2 == 0:
            batch = make_rows(rng.randint(1, 5), seed=rng.randint(0, 10**6))
            expected = flat.handle_inserts(batch)
            got = sharded.handle_inserts(batch)
        else:
            live = list(flat.relation.iter_ids())
            doomed = rng.sample(live, min(len(live), rng.randint(1, 4)))
            assert flat.preview_deletes(doomed) == sharded.preview_deletes(
                doomed
            )
            expected = flat.handle_deletes(doomed)
            got = sharded.handle_deletes(doomed)
        assert got == expected, f"profiles diverged at step {step}"


class TestBootstrap:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_partition_profile_matches_unsharded(self, shards):
        rows = make_rows(50)
        flat = SwanProfiler.profile(make_relation(rows))
        sharded = ShardedSwanProfiler.partition(
            make_relation(rows), shards=shards
        )
        try:
            assert sharded.snapshot() == flat.snapshot()
            assert list(sharded.relation.iter_items()) == list(
                flat.relation.iter_items()
            )
        finally:
            flat.close()
            sharded.close()

    def test_profile_entry_point_dispatches(self):
        rows = make_rows(30)
        profiler = SwanProfiler.profile(make_relation(rows), shards=2)
        try:
            assert isinstance(profiler, ShardedSwanProfiler)
            assert profiler.shard_stats()["shard_count"] == 2
        finally:
            profiler.close()

    def test_partition_preserves_tombstones(self):
        rows = make_rows(30)
        relation = make_relation(rows)
        flat = SwanProfiler.profile(relation)
        flat.handle_deletes([0, 7, 13])
        sharded = ShardedSwanProfiler.partition(relation, shards=3)
        try:
            assert sharded.relation.next_tuple_id == relation.next_tuple_id
            assert list(sharded.relation.iter_items()) == list(
                relation.iter_items()
            )
            assert sharded.snapshot() == flat.snapshot()
        finally:
            flat.close()
            sharded.close()

    def test_build_skips_global_discovery(self):
        rows = make_rows(30)
        relation = make_relation(rows)
        flat = SwanProfiler.profile(relation)
        snap = flat.snapshot()
        built = SwanProfiler.build(
            relation, list(snap.mucs), list(snap.mnucs), shards=2
        )
        try:
            assert built.snapshot() == snap
        finally:
            flat.close()
            built.close()

    def test_repartition_is_deterministic(self):
        """Recovery invariant: partitioning the same relation twice
        lands every tuple on the same shard with the same local ID."""
        rows = make_rows(40)
        first = ShardedSwanProfiler.partition(make_relation(rows), shards=3)
        second = ShardedSwanProfiler.partition(make_relation(rows), shards=3)
        try:
            for left, right in zip(first.shards, second.shards):
                assert list(left.relation.iter_items()) == list(
                    right.relation.iter_items()
                )
        finally:
            first.close()
            second.close()


class TestDynamicEquality:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_thread_mode_bit_identical(self, shards):
        rows = make_rows(40)
        flat = SwanProfiler.profile(make_relation(rows))
        sharded = SwanProfiler.profile(
            make_relation(rows), shards=shards, execution_mode="thread"
        )
        try:
            drive_both(flat, sharded)
        finally:
            flat.close()
            sharded.close()

    @fork_only
    @pytest.mark.parametrize("shards", [2, 4])
    def test_process_mode_bit_identical(self, shards):
        rows = make_rows(40)
        flat = SwanProfiler.profile(make_relation(rows))
        sharded = SwanProfiler.profile(
            make_relation(rows), shards=shards, execution_mode="process"
        )
        try:
            drive_both(flat, sharded)
        finally:
            flat.close()
            sharded.close()

    def test_cross_shard_duplicates_detected(self):
        """A duplicate pair split across shards must break uniqueness
        exactly as it does unsharded."""
        rows = [(1, 2), (3, 4)]
        schema = Schema(["a", "b"])
        sharded = SwanProfiler.profile(
            Relation.from_rows(schema, rows), shards=2
        )
        try:
            assert sharded.is_unique(["a"])
            # Global ID 2 lands on shard 0, duplicating (1, 2) on shard 0?
            # No: (1, 2) is global ID 0 (shard 0), the insert is global
            # ID 2 (shard 0) -- extend to ID 3 to cross shards.
            sharded.handle_inserts([(5, 6), (3, 9)])  # IDs 2 (s0), 3 (s1)
            # (3, 9) agrees with (3, 4) (shard 1 vs shard 1)? ID 1 is
            # shard 1, ID 3 is shard 1: intra-shard. Add a true cross
            # pair: ID 4 lands on shard 0 and duplicates ID 1's "a".
            sharded.handle_inserts([(3, 7)])  # ID 4, shard 0
            assert not sharded.is_unique(["a"])
            assert sharded.is_unique(["a", "b"])
            stats = sharded.shard_stats()
            assert stats["cross_sets"] >= 1
        finally:
            sharded.close()

    def test_delete_restores_cross_shard_uniqueness(self):
        schema = Schema(["a", "b"])
        sharded = SwanProfiler.profile(
            Relation.from_rows(schema, [(1, 2), (3, 4), (1, 5)]), shards=2
        )
        try:
            # IDs 0 (s0) and 2 (s0)... spread: 0->s0, 1->s1, 2->s0.
            # (1, 2) vs (1, 5) collide on "a" within shard 0; add a
            # cross-shard collision and then delete it away.
            sharded.handle_inserts([(3, 8)])  # ID 3, shard 1: intra with ID 1
            sharded.handle_inserts([(9, 4)])  # ID 4, shard 0: cross on "b"
            assert not sharded.is_unique(["b"])
            sharded.handle_deletes([4])
            assert sharded.is_unique(["b"])
        finally:
            sharded.close()


class TestInsertOnly:
    def test_deletes_raise_typed_error(self):
        rows = make_rows(20)
        profiler = SwanProfiler.profile(
            make_relation(rows), shards=2, shard_insert_only=True
        )
        try:
            with pytest.raises(ProfileStateError, match="insert-only"):
                profiler.handle_deletes([0])
            with pytest.raises(ProfileStateError, match="insert-only"):
                profiler.preview_deletes([0])
        finally:
            profiler.close()

    def test_inserts_still_exact(self):
        rows = make_rows(30)
        flat = SwanProfiler.profile(make_relation(rows))
        profiler = SwanProfiler.profile(
            make_relation(rows), shards=2, shard_insert_only=True
        )
        try:
            for seed in range(4):
                batch = make_rows(4, seed=seed)
                assert flat.handle_inserts(batch) == profiler.handle_inserts(
                    batch
                )
        finally:
            flat.close()
            profiler.close()

    def test_shards_skip_pli_build(self):
        profiler = SwanProfiler.profile(
            make_relation(make_rows(20)), shards=2, shard_insert_only=True
        )
        try:
            assert profiler.shard_stats()["insert_only"] is True
            for shard in profiler.shards:
                assert not shard._plis
        finally:
            profiler.close()

    def test_insert_only_flag_alone_enables_facade(self):
        profiler = SwanProfiler.profile(
            make_relation(make_rows(20)), shard_insert_only=True
        )
        try:
            assert isinstance(profiler, ShardedSwanProfiler)
            assert profiler.shard_stats()["shard_count"] == 1
        finally:
            profiler.close()


class TestIntrospection:
    @pytest.fixture
    def sharded(self):
        profiler = SwanProfiler.profile(make_relation(make_rows(40)), shards=3)
        yield profiler
        profiler.close()

    def test_shard_stats_gauges(self, sharded):
        stats = sharded.shard_stats()
        assert stats["shard_count"] == 3
        assert sum(stats["shard_rows"]) == 40
        assert {"merge_seconds", "cross_shard_probes", "cross_sets"} <= set(
            stats
        )

    def test_aggregated_stats_are_sums(self, sharded):
        assert sharded.encoding_stats()
        assert sharded.cache_stats()["entries"] == sum(
            shard.cache_stats()["entries"] for shard in sharded.shards
        )
        assert sharded.indexed_columns == frozenset().union(
            *(shard.indexed_columns for shard in sharded.shards)
        )

    def test_value_index_redirects_to_shards(self, sharded):
        with pytest.raises(ProfileStateError, match="shard-local IDs"):
            sharded.value_index(0)

    def test_approximation_degree_spans_shards(self, sharded):
        flat = SwanProfiler.profile(
            make_relation(make_rows(40))
        )
        try:
            for column in range(N_COLUMNS):
                assert sharded.approximation_degree(
                    [column]
                ) == flat.approximation_degree([column])
        finally:
            flat.close()

    def test_compact_storage_reclaims_and_preserves_ids(self, sharded):
        sharded.handle_deletes([0, 1, 2, 3])
        before = list(sharded.relation.iter_items())
        assert sharded.compact_storage() == 4
        assert list(sharded.relation.iter_items()) == before

    def test_commit_rejects_foreign_outcome(self, sharded):
        flat = SwanProfiler.profile(make_relation(make_rows(10)))
        try:
            outcome = flat.analyze_inserts([make_rows(1, seed=1)[0]])
            with pytest.raises(ProfileStateError, match="sharded analysis"):
                sharded.commit_inserts([make_rows(1, seed=1)[0]], outcome)
        finally:
            flat.close()

    def test_last_batch_stats_aggregate(self, sharded):
        batch = make_rows(6, seed=3)
        sharded.handle_inserts(batch)
        assert sharded.last_insert_stats.batch_size == 6
        sharded.handle_deletes([5, 6, 7])
        assert sharded.last_delete_stats.batch_size == 3
