"""Unit tests for the arithmetic shard router."""

import pytest

from repro.shard.router import ShardRouter


class TestPlacement:
    def test_round_trip_over_dense_id_space(self):
        router = ShardRouter(3)
        for global_id in range(100):
            shard = router.shard_of(global_id)
            local_id = router.local_id(global_id)
            assert 0 <= shard < 3
            assert router.global_id(shard, local_id) == global_id

    def test_single_shard_is_identity(self):
        router = ShardRouter(1)
        assert router.shard_of(42) == 0
        assert router.local_id(42) == 42
        assert router.global_id(0, 42) == 42

    def test_perfect_balance(self):
        router = ShardRouter(4)
        counts = [0] * 4
        for global_id in range(101):
            counts[router.shard_of(global_id)] += 1
        assert max(counts) - min(counts) <= 1

    def test_local_ids_dense_per_shard(self):
        """The density invariant: shard s receives exactly the IDs
        congruent to s, so its local IDs count up 0, 1, 2, ..."""
        router = ShardRouter(3)
        per_shard = {0: [], 1: [], 2: []}
        for global_id in range(30):
            per_shard[router.shard_of(global_id)].append(
                router.local_id(global_id)
            )
        for local_ids in per_shard.values():
            assert local_ids == list(range(10))

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard count"):
            ShardRouter(0)


class TestSplitting:
    def test_split_ids_groups_and_translates(self):
        router = ShardRouter(2)
        assert router.split_ids([0, 1, 2, 5]) == {0: [0, 1], 1: [0, 2]}

    def test_split_ids_preserves_input_order(self):
        router = ShardRouter(2)
        assert router.split_ids([6, 2, 4]) == {0: [3, 1, 2]}

    def test_split_ids_omits_empty_shards(self):
        router = ShardRouter(4)
        assert set(router.split_ids([0, 4, 8])) == {0}

    def test_split_rows_follows_dense_allocation(self):
        router = ShardRouter(2)
        rows = [("a",), ("b",), ("c",)]
        # first_global_id=5 is odd: rows land on shards 1, 0, 1.
        assert router.split_rows(5, rows) == {
            1: [("a",), ("c",)],
            0: [("b",)],
        }

    def test_split_rows_matches_split_ids(self):
        router = ShardRouter(3)
        rows = [(i,) for i in range(7)]
        first = 11
        by_rows = router.split_rows(first, rows)
        by_ids = router.split_ids(range(first, first + len(rows)))
        assert set(by_rows) == set(by_ids)
        for shard, local_ids in by_ids.items():
            assert len(by_rows[shard]) == len(local_ids)
