"""Tests for the sharded profiler package."""
