"""The exception hierarchy contract: one catchable base class."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SchemaError,
    errors.UnknownColumnError,
    errors.TupleIdError,
    errors.ArityError,
    errors.ProfileStateError,
    errors.InconsistentProfileError,
    errors.AlgorithmError,
    errors.WorkloadError,
    errors.BudgetExceededError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_unknown_column_message():
    error = errors.UnknownColumnError("ghost", ["a", "b"])
    assert "ghost" in str(error)
    assert "'a'" in str(error)
    assert error.column == "ghost"


def test_unknown_column_without_available():
    assert "ghost" in str(errors.UnknownColumnError("ghost"))


def test_library_never_raises_bare_exceptions():
    """Spot-check: representative misuse raises ReproError subclasses."""
    from repro.storage.relation import Relation
    from repro.storage.schema import Schema

    relation = Relation(Schema(["a"]))
    with pytest.raises(errors.ReproError):
        relation.delete(0)
    with pytest.raises(errors.ReproError):
        relation.insert(("x", "y"))
    with pytest.raises(errors.ReproError):
        Schema(["a", "a"])
    with pytest.raises(errors.ReproError):
        Schema(["a"]).index_of("zz")
