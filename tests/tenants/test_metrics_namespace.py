"""Satellite regression: metrics from co-hosted services must not collide.

Two ProfilingServices in one process (the multi-tenant deployment) each
own a MetricsRegistry. The namespace stamped per tenant keeps their
exported documents attributable, and counters incremented on one tenant
must never leak into a sibling's registry.
"""

from repro.service.metrics import MetricsRegistry
from repro.service.server import ProfilingService, ServiceConfig
from repro.storage.relation import Relation
from repro.storage.schema import Schema

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def start_service(tmp_path, name):
    service = ProfilingService(
        str(tmp_path / name),
        config=ServiceConfig(algorithm="bruteforce", fsync=False),
        tenant_id=name,
    )
    service.start(
        initial=Relation.from_rows(Schema(["Name", "Phone", "Age"]), ROWS)
    )
    return service


class TestRegistryNamespace:
    def test_namespace_in_document(self):
        registry = MetricsRegistry(namespace="t1")
        registry.counter("x").inc()
        assert registry.to_dict()["namespace"] == "t1"

    def test_no_namespace_no_key(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert "namespace" not in registry.to_dict()

    def test_two_services_do_not_share_counters(self, tmp_path):
        a = start_service(tmp_path, "tenant-a")
        b = start_service(tmp_path, "tenant-b")
        try:
            a.apply_insert_batch([("Ada", "111", "9")])
            a.apply_insert_batch([("Bob", "222", "8")])
            b.apply_insert_batch([("Cal", "333", "7")])
            assert a.metrics.counter("batches_applied").value == 2
            assert b.metrics.counter("batches_applied").value == 1
            assert a.metrics.counter("rows_inserted").value == 2
            assert b.metrics.counter("rows_inserted").value == 1
        finally:
            a.stop()
            b.stop()

    def test_two_services_documents_attributable(self, tmp_path):
        a = start_service(tmp_path, "tenant-a")
        b = start_service(tmp_path, "tenant-b")
        try:
            assert a.metrics.to_dict()["namespace"] == "tenant-a"
            assert b.metrics.to_dict()["namespace"] == "tenant-b"
            assert a.stats()["tenant"] == "tenant-a"
            assert b.stats()["tenant"] == "tenant-b"
        finally:
            a.stop()
            b.stop()


class TestRuntimeGaugeIsolation:
    """Supervisor-era gauges must stay per-tenant across restarts.

    ``restarts_total`` lives in the *manager* (every reopen builds a
    fresh registry) and is stamped into each new registry; restarting
    one tenant must never bleed into a co-hosted sibling's gauges.
    """

    def test_restart_gauges_do_not_leak_across_tenants(self, tmp_path):
        from repro.tenants.config import TenantConfig
        from repro.tenants.manager import TenantManager

        config = TenantConfig(
            columns=("Name", "Phone", "Age"),
            algorithm="bruteforce",
            fsync=False,
        )
        with TenantManager(
            str(tmp_path / "fleet"), sleep=lambda _s: None
        ) as manager:
            manager.create("tenant-a", config, initial_rows=ROWS)
            manager.create("tenant-b", config, initial_rows=ROWS)
            manager.restart_tenant("tenant-a")
            manager.restart_tenant("tenant-a")

            a = manager.get("tenant-a").service
            b = manager.get("tenant-b").service
            assert a.metrics.gauge("restarts_total").value == 2
            assert b.metrics.gauge("restarts_total").value == 0
            assert a.metrics.gauge("last_recovery_duration_seconds").value >= 0

            # The fleet document aggregates and attributes them.
            fleet = manager.fleet_status()
            assert fleet["totals"]["restarts_total"] == 2
            a_gauges = fleet["tenants"]["tenant-a"]["gauges"]
            b_gauges = fleet["tenants"]["tenant-b"]["gauges"]
            assert a_gauges["restarts_total"] == 2
            assert b_gauges.get("restarts_total", 0) == 0
            # Liveness gauges are present and sane for both tenants.
            for gauges in (a_gauges, b_gauges):
                assert gauges["uptime_seconds"] >= 0
                assert gauges["time_in_state_seconds"] >= 0
            # The restarted tenant's clocks reset; its registry is new.
            assert a.metrics.to_dict()["namespace"] == "tenant-a"
            assert b.metrics.to_dict()["namespace"] == "tenant-b"
