"""The seq-tagged LRU query cache behind ``query_profile``."""

import pytest

from repro.errors import TenantError, TenantModeError, WorkloadError
from repro.tenants.config import TenantConfig
from repro.tenants.manager import ProfileQueryCache, TenantManager

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


def make_manager(tmp_path):
    return TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)


def gauges(manager, tenant_id):
    return manager.get(tenant_id).service.stats()["gauges"]


class TestCacheUnit:
    KEY = (("mucs",), None, ())
    OTHER = (("mnucs",), 2, ("Name",))

    def test_hit_after_put_same_seq(self):
        cache = ProfileQueryCache()
        assert cache.get(5, self.KEY) is None
        cache.put(5, self.KEY, {"doc": 1})
        assert cache.get(5, self.KEY) == {"doc": 1}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_seq_advance_invalidates_everything(self):
        cache = ProfileQueryCache()
        cache.put(1, self.KEY, {"doc": 1})
        cache.put(1, self.OTHER, {"doc": 2})
        assert len(cache) == 2
        assert cache.get(2, self.KEY) is None
        assert len(cache) == 0

    def test_lru_eviction_at_capacity(self):
        cache = ProfileQueryCache(capacity=2)
        cache.put(1, (("mucs",), 1, ()), {"doc": 1})
        cache.put(1, (("mucs",), 2, ()), {"doc": 2})
        # Touch the oldest so the middle entry becomes the LRU victim.
        assert cache.get(1, (("mucs",), 1, ())) is not None
        cache.put(1, (("mucs",), 3, ()), {"doc": 3})
        assert len(cache) == 2
        assert cache.get(1, (("mucs",), 2, ())) is None
        assert cache.get(1, (("mucs",), 1, ())) is not None


class TestQueryProfileCaching:
    def test_repeat_query_hits(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            first = manager.query_profile("t1")
            second = manager.query_profile("t1")
            assert first == second
            stats = gauges(manager, "t1")
            assert stats["query_cache_hits"] == 1
            assert stats["query_cache_misses"] == 1

    def test_distinct_filters_are_distinct_entries(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.query_profile("t1")
            manager.query_profile("t1", max_arity=1)
            manager.query_profile("t1", kinds=("mucs",), contains=["Name"])
            assert gauges(manager, "t1")["query_cache_misses"] == 3
            manager.query_profile("t1", max_arity=1)
            assert gauges(manager, "t1")["query_cache_hits"] == 1

    def test_applied_batch_invalidates(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            before = manager.query_profile("t1")
            manager.ingest("t1", "insert", rows=[("Ada", "345", "9")])
            assert manager.flush("t1")
            after = manager.query_profile("t1")
            assert after["seq"] > before["seq"]
            # Phone stopped being unique, so this was a real recompute.
            assert {"columns": ["Phone"], "mask": 2} in before["mucs"]
            assert {"columns": ["Phone"], "mask": 2} not in after["mucs"]
            assert gauges(manager, "t1")["query_cache_misses"] == 2

    def test_cached_response_is_mutation_safe(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            first = manager.query_profile("t1")
            first["mucs"] = "clobbered"
            assert manager.query_profile("t1")["mucs"] != "clobbered"

    def test_bad_filters_are_not_cached(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            for _ in range(2):
                with pytest.raises(WorkloadError, match="contains"):
                    manager.query_profile("t1", contains=["NoSuchColumn"])
            assert gauges(manager, "t1")["query_cache_misses"] == 2
            assert gauges(manager, "t1")["query_cache_hits"] == 0


class TestShardedTenants:
    def test_sharded_tenant_serves_and_publishes_gauges(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(shards=2), initial_rows=ROWS)
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("t1")
            profile = manager.query_profile("t1")
            assert {"columns": ["Phone"], "mask": 2} in profile["mucs"]
            stats = gauges(manager, "t1")
            assert stats["shard_count"] == 2
            assert stats["shard_rows0"] + stats["shard_rows1"] == 4
            fleet = manager.fleet_status()
            assert fleet["tenants"]["t1"]["gauges"]["shard_count"] == 2

    def test_sharded_tenant_deletes_roundtrip(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(shards=2), initial_rows=ROWS)
            manager.ingest("t1", "delete", tuple_ids=[0])
            assert manager.flush("t1")
            assert manager.query_profile("t1")["live_rows"] == 2

    def test_shard_insert_only_requires_insert_only(self, tmp_path):
        with pytest.raises(TenantError, match="requires insert_only"):
            make_config(shards=2, shard_insert_only=True)

    def test_shard_insert_only_tenant_rejects_deletes(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create(
                "t1",
                make_config(
                    insert_only=True, shards=2, shard_insert_only=True
                ),
                initial_rows=ROWS,
            )
            with pytest.raises(TenantModeError, match="insert-only"):
                manager.ingest("t1", "delete", tuple_ids=[0])
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("t1")
            assert manager.query_profile("t1")["live_rows"] == 4

    def test_sharded_tenant_survives_restart(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(shards=2), initial_rows=ROWS)
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush_all()
            expected = manager.query_profile("t1")
        with TenantManager(root, sleep=lambda _s: None) as reopened:
            reopened.open_all()
            got = reopened.query_profile("t1")
            assert got["mucs"] == expected["mucs"]
            assert got["mnucs"] == expected["mnucs"]
            assert gauges(reopened, "t1")["shard_count"] == 2
