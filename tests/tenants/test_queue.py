"""IngestQueue: bounds, FIFO order, token tracking, hold/close."""

import threading

import pytest

from repro.errors import QueueFullError
from repro.service.server import Batch
from repro.tenants.queue import IngestQueue


def make_queue(**overrides):
    defaults = dict(tenant_id="t1", max_pending_batches=4, max_pending_bytes=1000)
    defaults.update(overrides)
    return IngestQueue(**defaults)


def insert_batch(token=None):
    return Batch("insert", rows=(("a", "b"),), token=token)


class TestAdmission:
    def test_fifo_order_and_byte_accounting(self):
        queue = make_queue()
        first = queue.put(insert_batch(), nbytes=10, now=1.0)
        second = queue.put(insert_batch(), nbytes=20, now=2.0)
        assert (first.batch_id, second.batch_id) == (1, 2)
        stats = queue.stats()
        assert stats.pending_batches == 2
        assert stats.pending_bytes == 30
        assert queue.take(timeout=0.1) is first
        assert queue.take(timeout=0.1) is second
        assert queue.stats().pending_bytes == 0

    def test_batch_count_limit(self):
        queue = make_queue(max_pending_batches=2)
        queue.put(insert_batch(), nbytes=1, now=0.0)
        queue.put(insert_batch(), nbytes=1, now=0.0)
        with pytest.raises(QueueFullError) as excinfo:
            queue.put(insert_batch(), nbytes=1, now=0.0)
        assert excinfo.value.tenant_id == "t1"
        assert excinfo.value.pending_batches == 2
        assert excinfo.value.max_pending_batches == 2
        assert queue.stats().rejected_total == 1

    def test_byte_limit(self):
        queue = make_queue(max_pending_bytes=100)
        queue.put(insert_batch(), nbytes=80, now=0.0)
        with pytest.raises(QueueFullError) as excinfo:
            queue.put(insert_batch(), nbytes=30, now=0.0)
        assert excinfo.value.pending_bytes == 80
        assert excinfo.value.max_pending_bytes == 100

    def test_taking_frees_capacity(self):
        queue = make_queue(max_pending_batches=1)
        queue.put(insert_batch(), nbytes=1, now=0.0)
        with pytest.raises(QueueFullError):
            queue.put(insert_batch(), nbytes=1, now=0.0)
        queue.take(timeout=0.1)
        queue.put(insert_batch(), nbytes=1, now=0.0)  # does not raise


class TestTokens:
    def test_pending_token_visible_until_taken(self):
        queue = make_queue()
        queue.put(insert_batch(token="tok-1"), nbytes=1, now=0.0)
        assert queue.is_token_pending("tok-1")
        assert not queue.is_token_pending("tok-2")
        queue.take(timeout=0.1)
        assert not queue.is_token_pending("tok-1")

    def test_duplicate_counter(self):
        queue = make_queue()
        queue.note_duplicate()
        queue.note_duplicate()
        assert queue.stats().duplicate_total == 2


class TestHoldAndClose:
    def test_take_times_out_empty(self):
        assert make_queue().take(timeout=0.01) is None

    def test_hold_gates_consumer(self):
        queue = make_queue()
        queue.put(insert_batch(), nbytes=1, now=0.0)
        queue.hold(True)
        assert queue.take(timeout=0.01) is None
        queue.hold(False)
        assert queue.take(timeout=0.1) is not None

    def test_hold_releases_blocked_taker(self):
        queue = make_queue()
        queue.put(insert_batch(), nbytes=1, now=0.0)
        queue.hold(True)
        taken = []

        def taker():
            taken.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.hold(False)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert taken and taken[0] is not None

    def test_closed_queue_rejects_puts_and_drains(self):
        queue = make_queue()
        queue.put(insert_batch(), nbytes=1, now=0.0)
        queue.close()
        with pytest.raises(QueueFullError):
            queue.put(insert_batch(), nbytes=1, now=0.0)
        # Already-admitted work still drains, then the queue reads empty.
        assert queue.take(timeout=0.1) is not None
        assert queue.take(timeout=0.01) is None
