"""TenantConfig and tenant-id validation."""

import pytest

from repro.errors import TenantError
from repro.service.server import ServiceConfig
from repro.tenants.config import TenantConfig, validate_tenant_id


class TestTenantId:
    @pytest.mark.parametrize(
        "tenant_id", ["t1", "alpha", "a", "A-b_c.9", "0tenant", "x" * 64]
    )
    def test_valid(self, tenant_id):
        assert validate_tenant_id(tenant_id) == tenant_id

    @pytest.mark.parametrize(
        "tenant_id",
        ["", ".hidden", "-dash", "has space", "a/b", "../escape", "x" * 65, 7],
    )
    def test_invalid(self, tenant_id):
        with pytest.raises(TenantError, match="invalid tenant id"):
            validate_tenant_id(tenant_id)


class TestTenantConfig:
    def test_needs_columns(self):
        with pytest.raises(TenantError, match="at least one column"):
            TenantConfig(columns=())

    def test_rejects_duplicate_columns(self):
        with pytest.raises(TenantError, match="duplicate column"):
            TenantConfig(columns=("a", "a"))

    def test_rejects_bad_queue_limits(self):
        with pytest.raises(TenantError, match="max_pending_batches"):
            TenantConfig(columns=("a",), max_pending_batches=0)
        with pytest.raises(TenantError, match="max_pending_bytes"):
            TenantConfig(columns=("a",), max_pending_bytes=0)

    def test_service_config_threads_performance_knobs(self):
        config = TenantConfig(
            columns=("a", "b"),
            parallelism=2,
            cache_budget_bytes=1 << 20,
            compact_live_fraction=0.25,
            compact_min_rows=10,
            algorithm="bruteforce",
            fsync=False,
        )
        service_config = config.service_config()
        assert isinstance(service_config, ServiceConfig)
        assert service_config.parallelism == 2
        assert service_config.cache_budget_bytes == 1 << 20
        assert service_config.compact_live_fraction == 0.25
        assert service_config.compact_min_rows == 10
        assert service_config.algorithm == "bruteforce"
        assert service_config.fsync is False

    def test_dict_round_trip(self):
        config = TenantConfig(
            columns=("a", "b", "c"),
            insert_only=True,
            watches=(("a", "b"),),
            parallelism=3,
            max_pending_batches=7,
        )
        assert TenantConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TenantError, match="unknown tenant config key"):
            TenantConfig.from_dict({"columns": ["a"], "paralellism": 4})

    def test_from_dict_requires_columns(self):
        with pytest.raises(TenantError, match="'columns'"):
            TenantConfig.from_dict({"insert_only": True})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(TenantError, match="must be an object"):
            TenantConfig.from_dict(["a"])
