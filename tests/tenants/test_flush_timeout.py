"""Satellite regression: flush timeouts surface as typed errors.

A drain deadline that expires must never be swallowed -- "stopped" or
"dropped" silently meaning "queued batches discarded" is exactly the
bug these tests pin down. The worker raises
:class:`~repro.errors.FlushTimeoutError`, the manager propagates it
(HTTP 504 at the edge), and shutdown collects instead of aborting.
"""

import pytest

from repro.errors import FlushTimeoutError
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


def make_manager(tmp_path):
    return TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)


def make_stuck_tenant(manager, tenant_id="t1"):
    """A tenant whose queue holds work its writer will never drain."""
    tenant = manager.create(tenant_id, make_config(), initial_rows=ROWS)
    tenant.worker.pause()
    manager.ingest(tenant_id, "insert", rows=[("Ada", "111", "9")])
    return tenant


class TestWorkerStop:
    def test_stop_with_drain_raises_on_timeout(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = make_stuck_tenant(manager)
            with pytest.raises(FlushTimeoutError) as excinfo:
                tenant.worker.stop(drain=True, timeout=0.2)
            assert excinfo.value.tenant_id == "t1"
            assert excinfo.value.pending_batches == 1

    def test_stop_without_drain_is_the_explicit_opt_out(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = make_stuck_tenant(manager)
            tenant.worker.stop(drain=False, timeout=0.2)
            assert not tenant.worker.alive

    def test_close_raises_but_still_stops_the_service(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = make_stuck_tenant(manager)
            with pytest.raises(FlushTimeoutError):
                manager.close("t1")
            # The error must not leak a running service behind it.
            assert not tenant.service.started
            assert not manager.is_open("t1")


class TestDrop:
    def test_drop_fails_and_leaves_tenant_running(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = make_stuck_tenant(manager)
            with pytest.raises(FlushTimeoutError) as excinfo:
                manager.drop("t1", drain_timeout=0.2)
            assert excinfo.value.pending_batches == 1
            # The drop did NOT go through: the tenant keeps serving and
            # the admitted batch is still queued, not discarded.
            assert manager.is_open("t1")
            assert tenant.queue.depth() == 1
            tenant.worker.resume()
            assert manager.flush("t1")
            assert manager.drop("t1")
            assert manager.tenant_ids() == []

    def test_force_drop_skips_the_drain(self, tmp_path):
        with make_manager(tmp_path) as manager:
            make_stuck_tenant(manager)
            parked = manager.drop("t1", force=True, drain_timeout=0.2)
            assert "dropped" in parked
            assert manager.tenant_ids() == []


class TestShutdown:
    def test_close_all_collects_drain_failures(self, tmp_path):
        manager = make_manager(tmp_path)
        make_stuck_tenant(manager, "stuck")
        manager.create("healthy", make_config(), initial_rows=ROWS)
        # Shutdown must not abort halfway because one queue is stuck:
        # both tenants stop, and the failed drain is recorded.
        manager.close_all()
        assert not manager.is_open("stuck")
        assert not manager.is_open("healthy")
        assert len(manager.drain_failures) == 1
        failure = manager.drain_failures[0]
        assert isinstance(failure, FlushTimeoutError)
        assert failure.tenant_id == "stuck"
