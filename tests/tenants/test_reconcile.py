"""Startup reconciliation: registry vs. on-disk state dirs.

A crash inside a lifecycle operation can leave the registry and the
``tenants/`` directory disagreeing in either direction. Serving through
the disagreement risks a wrong answer, so every divergence must land in
PARKED with a persisted reason -- never be silently dropped, and never
let a tenant id be double-assigned onto leftover state.
"""

import json
import os

import pytest

from repro.errors import TenantError, TenantExistsError, TenantParkedError
from repro.faults.injector import CRASH, CrashPoint, FaultInjector, FaultPlan, active
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


class TestOrphanStateDir:
    def test_orphan_dir_is_parked_not_dropped(self, tmp_path):
        root = str(tmp_path / "fleet")
        os.makedirs(os.path.join(root, "tenants", "orphan"))
        with TenantManager(root, sleep=lambda _s: None) as manager:
            assert manager.parked_ids() == ["orphan"]
            record = manager.parked_record("orphan")
            assert record is not None
            assert record["by"] == "reconcile"
            assert record["registered"] is False
            assert "orphan state dir" in record["reason"]
            # Visible (with the reason) everywhere an operator looks.
            assert manager.tenant_ids() == ["orphan"]
            status = manager.tenant_status("orphan")
            assert status["health"] == "parked"

    def test_orphan_cannot_be_recovered_only_dropped(self, tmp_path):
        root = str(tmp_path / "fleet")
        os.makedirs(os.path.join(root, "tenants", "orphan"))
        with TenantManager(root, sleep=lambda _s: None) as manager:
            # No registry entry means no config to reopen it with.
            with pytest.raises(TenantError, match="orphan"):
                manager.recover("orphan")
            parked = manager.drop("orphan")
            # Drop preserves the evidence under dropped/.
            assert os.path.isdir(parked) and "dropped" in parked
            assert manager.parked_ids() == []

    def test_orphan_id_is_never_double_assigned(self, tmp_path):
        root = str(tmp_path / "fleet")
        os.makedirs(os.path.join(root, "tenants", "orphan"))
        with TenantManager(root, sleep=lambda _s: None) as manager:
            with pytest.raises(TenantParkedError):
                manager.create("orphan", make_config())

    def test_leftover_unregistered_dir_blocks_create(self, tmp_path):
        with TenantManager(
            str(tmp_path / "fleet"), sleep=lambda _s: None
        ) as manager:
            # A dir appearing *after* boot (so reconciliation never saw
            # it) is evidence of a crashed lifecycle op, not free real
            # estate: create must refuse rather than adopt it.
            os.makedirs(os.path.join(manager.root_dir, "tenants", "left"))
            with pytest.raises(TenantExistsError):
                manager.create("left", make_config())


class TestMissingStateDir:
    def test_registered_without_dir_is_parked(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
        import shutil

        shutil.rmtree(os.path.join(root, "tenants", "t1"))
        with TenantManager(root, sleep=lambda _s: None) as reopened:
            assert reopened.parked_ids() == ["t1"]
            record = reopened.parked_record("t1")
            assert record is not None
            assert record["by"] == "reconcile"
            assert record["registered"] is True
            assert "state dir missing" in record["reason"]
            # Boot does not silently serve an empty profile for it.
            assert reopened.open_all() == []
            # The operator's recover is the explicit "boot it empty".
            tenant = reopened.recover("t1")
            assert len(tenant.service.profiler.relation) == 0


class TestCrashInjectedDivergence:
    def test_crash_during_create_registry_publish(self, tmp_path):
        """Order 1: state dir exists, registry publish never landed."""
        root = str(tmp_path / "fleet")
        manager = TenantManager(root, sleep=lambda _s: None)
        injector = FaultInjector(
            FaultPlan.one_shot("tenants.registry.replace", kind=CRASH)
        )
        with active(injector):
            with pytest.raises(CrashPoint):
                manager.create("t1", make_config(), initial_rows=ROWS)
        assert injector.fired_at("tenants.registry.replace") == 1
        assert os.path.isdir(os.path.join(root, "tenants", "t1"))
        # Simulated process death: abandon the manager, boot a new one.
        with TenantManager(root, sleep=lambda _s: None) as recovered:
            assert recovered.parked_ids() == ["t1"]
            record = recovered.parked_record("t1")
            assert record is not None and record["by"] == "reconcile"
            with pytest.raises(TenantParkedError):
                recovered.create("t1", make_config())

    def test_crash_during_drop_state_move(self, tmp_path):
        """Order 2: registry updated, the state move never landed."""
        root = str(tmp_path / "fleet")
        manager = TenantManager(root, sleep=lambda _s: None)
        manager.create("t1", make_config(), initial_rows=ROWS)
        assert manager.flush_all()
        injector = FaultInjector(
            FaultPlan.one_shot("tenants.drop.replace", kind=CRASH)
        )
        with active(injector):
            with pytest.raises(CrashPoint):
                manager.drop("t1")
        assert injector.fired_at("tenants.drop.replace") == 1
        # The registry no longer knows t1 but its state dir survived.
        with TenantManager(root, sleep=lambda _s: None) as recovered:
            assert recovered.parked_ids() == ["t1"]
            record = recovered.parked_record("t1")
            assert record is not None
            assert record["registered"] is False
            # The committed rows are still on disk under the parked dir
            # for forensics; nothing was silently destroyed.
            assert os.path.isdir(os.path.join(root, "tenants", "t1"))


class TestParkedRecords:
    def test_torn_parked_record_still_parks(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.park("t1", "operator drill", by="operator")
        # Tear the record on disk: losing the reason must not un-park.
        path = os.path.join(root, "parked", "t1.json")
        with open(path, "w") as handle:
            handle.write('{"reason": "operator dri')
        with TenantManager(root, sleep=lambda _s: None) as reopened:
            assert reopened.parked_ids() == ["t1"]
            record = reopened.parked_record("t1")
            assert record is not None
            assert "unreadable" in record["reason"]
            with pytest.raises(TenantParkedError):
                reopened.get("t1")

    def test_parked_record_is_well_formed_json(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.park(
                "t1", "drill", by="operator", restarts=[1.0, 2.0]
            )
        with open(os.path.join(root, "parked", "t1.json")) as handle:
            record = json.load(handle)
        assert record["tenant"] == "t1"
        assert record["by"] == "operator"
        assert record["restarts"] == [1.0, 2.0]
        assert record["registered"] is True
        assert record["parked_unix"] > 0
