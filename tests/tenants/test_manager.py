"""TenantManager lifecycle, admission control, queries, isolation."""

import os

import pytest

from repro.errors import (
    QueueFullError,
    ServiceHealthError,
    TenantError,
    TenantExistsError,
    TenantModeError,
    UnknownTenantError,
    WorkloadError,
)
from repro.service.server import ProfilingService
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


def make_manager(tmp_path):
    return TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)


class TestLifecycle:
    def test_create_open_query(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            assert tenant.started
            assert manager.is_open("t1")
            assert manager.tenant_ids() == ["t1"]
            profile = manager.query_profile("t1")
            assert {"columns": ["Phone"], "mask": 2} in profile["mucs"]

    def test_create_duplicate_rejected(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config())
            with pytest.raises(TenantExistsError):
                manager.create("t1", make_config())

    def test_unknown_tenant_everywhere(self, tmp_path):
        with make_manager(tmp_path) as manager:
            for call in (
                lambda: manager.get("ghost"),
                lambda: manager.open("ghost"),
                lambda: manager.drop("ghost"),
                lambda: manager.query_profile("ghost"),
                lambda: manager.ingest("ghost", "insert", rows=[("a", "b", "c")]),
            ):
                with pytest.raises(UnknownTenantError):
                    call()

    def test_invalid_tenant_id_rejected(self, tmp_path):
        with make_manager(tmp_path) as manager:
            with pytest.raises(TenantError, match="invalid tenant id"):
                manager.create("../escape", make_config())

    def test_restart_recovers_registered_tenants(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.create("t2", make_config(columns=("a", "b")))
            manager.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")], token="tok-1"
            )
            assert manager.flush_all()

        with TenantManager(root, sleep=lambda _s: None) as reopened:
            tenants = reopened.open_all()
            assert [t.tenant_id for t in tenants] == ["t1", "t2"]
            assert len(reopened.get("t1").service.profiler.relation) == 4
            # Token dedup survives the restart via the changelog.
            receipt = reopened.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")], token="tok-1"
            )
            assert receipt["outcome"] == "duplicate"

    def test_close_keeps_registration(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.close("t1")
            assert not manager.is_open("t1")
            assert manager.tenant_ids() == ["t1"]
            reopened = manager.open("t1")
            assert len(reopened.service.profiler.relation) == 3

    def test_drop_parks_state_for_forensics(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            parked = manager.drop("t1")
            assert os.path.isdir(parked)
            assert "dropped" in parked
            assert manager.tenant_ids() == []
            with pytest.raises(UnknownTenantError):
                manager.get("t1")
            # The id is reusable; the old state stays parked.
            manager.create("t1", make_config())
            second = manager.drop("t1")
            assert second != parked

    def test_open_registered_but_never_sealed_boots_empty(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(snapshot_every=0))
        # Blow away the state dir but keep the registry entry: the crash
        # window between registry publish and first durable seal.
        import shutil

        with TenantManager(root, sleep=lambda _s: None) as reopened:
            shutil.rmtree(os.path.join(root, "tenants", "t1"))
            tenant = reopened.open("t1")
            assert len(tenant.service.profiler.relation) == 0


class TestIngest:
    def test_async_ingest_applies(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            receipt = manager.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")]
            )
            assert receipt["outcome"] == "enqueued"
            assert manager.flush("t1")
            assert len(manager.get("t1").service.profiler.relation) == 4

    def test_unknown_kind_rejected(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config())
            with pytest.raises(WorkloadError, match="unknown batch kind"):
                manager.ingest("t1", "upsert", rows=[("a", "b", "c")])

    def test_insert_only_mode_rejects_deletes(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create(
                "ao", make_config(insert_only=True), initial_rows=ROWS
            )
            with pytest.raises(TenantModeError, match="insert-only"):
                manager.ingest("ao", "delete", tuple_ids=[0])
            # Inserts still flow.
            manager.ingest("ao", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("ao")

    def test_health_gates_admission(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.get("t1").service.health.mark_read_only("test gate")
            with pytest.raises(ServiceHealthError):
                manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])

    def test_queue_full_raises_and_counts(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create(
                "t1", make_config(max_pending_batches=1), initial_rows=ROWS
            )
            tenant = manager.get("t1")
            tenant.worker.pause()
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            with pytest.raises(QueueFullError):
                manager.ingest("t1", "insert", rows=[("Bob", "222", "8")])
            assert tenant.service.metrics.counter("queue_rejections").value == 1
            tenant.worker.resume()
            assert manager.flush("t1")

    def test_pending_token_deduped_before_apply(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            tenant = manager.get("t1")
            tenant.worker.pause()
            first = manager.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")], token="tok"
            )
            second = manager.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")], token="tok"
            )
            assert first["outcome"] == "enqueued"
            assert second["outcome"] == "duplicate"
            tenant.worker.resume()
            assert manager.flush("t1")
            assert len(tenant.service.profiler.relation) == 4

    def test_poison_batch_dead_letters_not_siblings(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.create("t2", make_config(), initial_rows=ROWS)
            # Delete of a tuple id that never existed: quarantined.
            manager.ingest("t1", "delete", tuple_ids=[9999])
            manager.flush("t1")
            assert manager.dead_letters("t1")["count"] == 1
            assert manager.dead_letters("t2")["count"] == 0
            assert (
                manager.get("t2").service.health.state.value == "serving"
            )
            # The poisoned tenant still serves reads and later writes.
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("t1")
            assert len(manager.get("t1").service.profiler.relation) == 4


class TestQueries:
    def test_query_filters(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            by_arity = manager.query_profile("t1", max_arity=1)
            assert all(len(e["columns"]) <= 1 for e in by_arity["mucs"])
            containing = manager.query_profile("t1", contains=["Name"])
            assert all("Name" in e["columns"] for e in containing["mucs"])
            only_mucs = manager.query_profile("t1", kinds=("mucs",))
            assert "mnucs" not in only_mucs
            with pytest.raises(WorkloadError, match="unknown profile kind"):
                manager.query_profile("t1", kinds=("fds",))
            with pytest.raises(WorkloadError, match="contains"):
                manager.query_profile("t1", contains=["NoSuchColumn"])

    def test_tenant_status_document(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            manager.flush("t1")
            status = manager.tenant_status("t1")
            assert status["tenant"] == "t1"
            assert status["health"] == "serving"
            assert status["worker"]["alive"]
            assert status["queue"]["enqueued_total"] == 1
            outcomes = [b["outcome"] for b in status["recent_batches"]]
            assert outcomes == ["applied"]

    def test_fleet_status_aggregates(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.create("t2", make_config(columns=("a", "b")))
            fleet = manager.fleet_status()
            assert fleet["registered"] == ["t1", "t2"]
            assert fleet["totals"]["tenants"] == 2
            assert fleet["totals"]["serving"] == 2
            assert fleet["totals"]["live_rows"] == 3
            assert set(fleet["tenants"]) == {"t1", "t2"}


class TestTenantAttribution:
    """Satellite: diagnostics must name the tenant they belong to."""

    def test_lock_contention_names_tenant(self, tmp_path):
        from repro.errors import ProfileStateError
        from repro.storage.relation import Relation
        from repro.storage.schema import Schema

        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            intruder = ProfilingService(
                tenant.data_dir,
                config=make_config().service_config(),
                tenant_id="intruder",
            )
            initial = Relation.from_rows(
                Schema(["Name", "Phone", "Age"]), ROWS
            )
            with pytest.raises(ProfileStateError) as excinfo:
                intruder.start(initial=initial)
            assert "tenant 'intruder'" in str(excinfo.value)

    def test_quarantine_dir_names_tenant(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            service = tenant.service
            # Poison the served profile so the sentinel diverges and
            # quarantines the distrusted durable state.
            with tenant.lock:
                service.profiler._repository.replace([1], [])
                assert service.run_sentinel() is False
            [record] = service.dead_letters.entries()
            assert record["name"].startswith("state-t1-seq")
