"""FleetSupervisor: dead-writer recovery, restart budgets, breakers.

The supervisor is driven here via ``check_once()`` -- never ``start()``
-- so every test is deterministic: each pass either restarts an
unhealthy tenant, observes a recovered one (clearing its plan and
breaker), or parks a tenant whose restart budget is spent.
"""

import os
import time

import pytest

from repro.errors import TenantParkedError, TenantRecoveringError
from repro.faults.injector import CRASH, FaultInjector, FaultPlan, active
from repro.service.health import HealthState
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager
from repro.tenants.supervisor import FleetSupervisor, SupervisorConfig
from repro.tenants.worker import SITE_WORKER_APPLY

ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]


def make_config(**overrides):
    defaults = dict(
        columns=("Name", "Phone", "Age"),
        algorithm="bruteforce",
        fsync=False,
    )
    defaults.update(overrides)
    return TenantConfig(**defaults)


def make_manager(tmp_path):
    return TenantManager(str(tmp_path / "fleet"), sleep=lambda _s: None)


def make_supervisor(manager, max_restarts=3, **overrides):
    config = dict(
        poll_interval=0.01,
        backoff_base=0.0,
        backoff_max=0.0,
        max_restarts=max_restarts,
        budget_window_seconds=300.0,
        breaker_retry_after=0.25,
    )
    config.update(overrides)
    return FleetSupervisor(manager, config=SupervisorConfig(**config))


def wait_for_worker_death(tenant, timeout=5.0):
    deadline = time.monotonic() + timeout
    while tenant.worker.alive and time.monotonic() < deadline:
        time.sleep(0.01)
    return not tenant.worker.alive


class TestWorkerDeathRecovery:
    def test_dead_writer_is_restarted_and_batch_replays(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager)
            injector = FaultInjector(
                FaultPlan.one_shot(SITE_WORKER_APPLY, kind=CRASH)
            )
            with active(injector):
                manager.ingest(
                    "t1", "insert", rows=[("Ada", "111", "9")], token="tok-1"
                )
                assert wait_for_worker_death(tenant)
            assert injector.fired_at(SITE_WORKER_APPLY) == 1
            assert tenant.worker.death_reason is not None
            assert "CrashPoint" in tenant.worker.death_reason

            # Pass 1 restarts; pass 2 observes the reopened tenant
            # healthy and clears the plan + breaker.
            assert supervisor.check_once() == ["t1"]
            assert supervisor.check_once() == []
            reopened = manager.get("t1")
            assert reopened.worker.alive
            assert reopened.service.health.state is HealthState.SERVING

            # The killed batch was never applied and its token never
            # committed: the supervised re-ingest replays exactly once.
            receipt = manager.ingest(
                "t1", "insert", rows=[("Ada", "111", "9")], token="tok-1"
            )
            assert receipt["outcome"] == "enqueued"
            assert manager.flush("t1")
            assert len(manager.get("t1").service.profiler.relation) == 4

    def test_recovery_events_are_logged(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager)
            injector = FaultInjector(
                FaultPlan.one_shot(SITE_WORKER_APPLY, kind=CRASH)
            )
            with active(injector):
                manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
                assert wait_for_worker_death(tenant)
            supervisor.check_once()
            supervisor.check_once()
            actions = [event.action for event in supervisor.events]
            assert actions == ["unhealthy", "restarted", "recovered"]
            unhealthy = next(iter(supervisor.events))
            assert "writer thread dead" in unhealthy.detail
            status = supervisor.status()
            assert status["recovering"] == []
            assert status["restart_budgets"] == {"t1": 1}
            assert [e["action"] for e in status["events"]] == actions


class TestRestartBudgetParks:
    def drive_to_parked(self, manager, supervisor, tenant_id, max_passes=20):
        """Re-break the tenant every time it comes back healthy."""
        for _ in range(max_passes):
            if tenant_id in manager.parked_ids():
                return
            if manager.is_open(tenant_id):
                tenant = manager.get(tenant_id)
                if tenant.service.health.state is HealthState.SERVING:
                    tenant.service.health.mark_read_only("induced fault")
            supervisor.check_once()
        raise AssertionError(f"{tenant_id} never parked")

    def test_crash_loop_exhausts_budget_and_parks(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager, max_restarts=2)
            self.drive_to_parked(manager, supervisor, "t1")

            record = manager.parked_record("t1")
            assert record is not None
            assert record["by"] == "supervisor"
            assert "restart budget exhausted" in record["reason"]
            # The budget demonstrably stopped the loop: exactly
            # max_restarts restarts, stamped in the record.
            assert len(record["restarts"]) == 2
            record_path = os.path.join(
                manager.root_dir, "parked", "t1.json"
            )
            assert os.path.exists(record_path)

            # Parked refuses all traffic until an operator steps in.
            assert not manager.is_open("t1")
            with pytest.raises(TenantParkedError):
                manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            with pytest.raises(TenantParkedError):
                manager.get("t1")
            # ... and the supervisor leaves it alone.
            assert supervisor.check_once() == []
            assert "parked" in [e.action for e in supervisor.events]

    def test_operator_recover_clears_parked_record(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager, max_restarts=1)
            self.drive_to_parked(manager, supervisor, "t1")

            tenant = manager.recover("t1")
            assert tenant.service.health.state is HealthState.SERVING
            assert manager.parked_record("t1") is None
            assert not os.path.exists(
                os.path.join(manager.root_dir, "parked", "t1.json")
            )
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("t1")
            assert len(manager.get("t1").service.profiler.relation) == 4

    def test_parked_record_survives_manager_restart(self, tmp_path):
        root = str(tmp_path / "fleet")
        with TenantManager(root, sleep=lambda _s: None) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager, max_restarts=1)
            self.drive_to_parked(manager, supervisor, "t1")

        with TenantManager(root, sleep=lambda _s: None) as reopened:
            assert reopened.parked_ids() == ["t1"]
            assert reopened.open_all() == []
            record = reopened.parked_record("t1")
            assert record is not None and record["by"] == "supervisor"
            # Recovery still works from the durable state.
            tenant = reopened.recover("t1")
            assert len(tenant.service.profiler.relation) == 3


class TestCircuitBreaker:
    def test_ingest_shed_while_recovery_in_flight(self, tmp_path):
        with make_manager(tmp_path) as manager:
            tenant = manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager)
            tenant.service.health.mark_read_only("induced fault")
            # Pass 1 restarts but keeps the plan (and breaker) until a
            # later pass observes the reopened tenant healthy.
            assert supervisor.check_once() == ["t1"]
            assert manager.breaker_open("t1")
            with pytest.raises(TenantRecoveringError) as excinfo:
                manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert excinfo.value.retry_after == 0.25
            assert supervisor.check_once() == []
            assert not manager.breaker_open("t1")
            manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])
            assert manager.flush("t1")

    def test_parking_clears_the_breaker(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager, max_restarts=1)
            TestRestartBudgetParks().drive_to_parked(
                manager, supervisor, "t1"
            )
            # A parked tenant answers with its parked record, not a
            # breaker retry hint.
            assert not manager.breaker_open("t1")
            with pytest.raises(TenantParkedError):
                manager.ingest("t1", "insert", rows=[("Ada", "111", "9")])


class TestBackoff:
    def test_exponential_backoff_between_attempts(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            now = {"t": 0.0}
            supervisor = FleetSupervisor(
                manager,
                config=SupervisorConfig(
                    backoff_base=10.0,
                    backoff_multiplier=2.0,
                    backoff_max=100.0,
                    max_restarts=10,
                ),
                clock=lambda: now["t"],
            )
            manager.get("t1").service.health.mark_read_only("fault 1")
            assert supervisor.check_once() == ["t1"]  # attempt 1 at t=0
            # The restart "succeeded" but the tenant promptly breaks
            # again: the same plan's backoff must gate attempt 2.
            manager.get("t1").service.health.mark_read_only("fault 2")
            assert supervisor.check_once() == []  # t=0 < next_attempt=10
            now["t"] = 5.0
            assert supervisor.check_once() == []  # still inside backoff
            now["t"] = 10.5
            assert supervisor.check_once() == ["t1"]  # attempt 2
            # Attempt 2 doubles the delay: next attempt not before 30.5.
            manager.get("t1").service.health.mark_read_only("fault 3")
            now["t"] = 20.0
            assert supervisor.check_once() == []
            now["t"] = 31.0
            assert supervisor.check_once() == ["t1"]  # attempt 3


class TestRestartAccounting:
    def test_restarts_total_survives_reopen(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            manager.restart_tenant("t1")
            manager.restart_tenant("t1")
            # Every reopen builds a fresh metrics registry; the manager
            # re-stamps the counter that must survive restarts.
            gauges = manager.get("t1").service.metrics
            assert gauges.gauge("restarts_total").value == 2
            assert (
                gauges.gauge("last_recovery_duration_seconds").value >= 0.0
            )
            # The profile itself survived both restarts.
            assert len(manager.get("t1").service.profiler.relation) == 3

    def test_supervisor_thread_start_stop(self, tmp_path):
        with make_manager(tmp_path) as manager:
            manager.create("t1", make_config(), initial_rows=ROWS)
            supervisor = make_supervisor(manager).start()
            assert supervisor.alive
            assert supervisor.start() is supervisor  # idempotent
            supervisor.stop()
            assert not supervisor.alive
            assert supervisor.status()["alive"] is False
