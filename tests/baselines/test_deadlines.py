"""Cooperative deadline behaviour of the long-running baselines."""

import pytest

from repro.baselines.ducc import Ducc, discover_ducc
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian import Gordian
from repro.baselines.gordian_inc import GordianInc
from repro.bench.harness import BenchConfig, SystemRunner
from repro.errors import BudgetExceededError
from tests.conftest import random_relation


class TestDuccDeadline:
    def test_zero_budget_raises(self):
        relation = random_relation(0, n_columns=6, n_rows=40, domain=3)
        with pytest.raises(BudgetExceededError):
            # A deadline in the past triggers on the first poll; the
            # poll interval is 1024 classifications, so use a relation
            # complex enough to reach it.
            Ducc(relation, deadline_s=-1.0, pli_cache_size=16).run()

    def test_generous_budget_completes(self):
        relation = random_relation(1, n_columns=4, n_rows=20, domain=3)
        mucs, mnucs = discover_ducc(relation, deadline_s=600.0)
        reference = discover_ducc(relation)
        assert (sorted(mucs), sorted(mnucs)) == (
            sorted(reference[0]),
            sorted(reference[1]),
        )

    def test_ducc_inc_propagates_deadline(self):
        relation = random_relation(2, n_columns=6, n_rows=40, domain=3)
        from repro.baselines.bruteforce import discover_bruteforce

        mucs, __ = discover_bruteforce(relation)
        inc = DuccInc(relation, mucs, deadline_s=-1.0)
        with pytest.raises(BudgetExceededError):
            inc.handle_deletes(list(relation.iter_ids())[:5])


class TestGordianDeadline:
    def test_zero_budget_raises(self):
        relation = random_relation(3, n_columns=7, n_rows=60, domain=2)
        gordian = Gordian.from_relation(relation)
        gordian._deadline_s = -1.0
        with pytest.raises(BudgetExceededError):
            gordian.maximal_non_uniques()

    def test_gordian_inc_propagates_deadline(self):
        relation = random_relation(4, n_columns=7, n_rows=60, domain=2)
        from repro.baselines.bruteforce import discover_bruteforce

        __, mnucs = discover_bruteforce(relation)
        inc = GordianInc(relation, mnucs, deadline_s=-1.0)
        with pytest.raises(BudgetExceededError):
            inc.handle_deletes([relation.row(0)])


class TestHarnessIntegration:
    def test_budget_exception_becomes_aborted_point(self):
        runner = SystemRunner("sys", BenchConfig(timeout_s=60))

        def blow_up():
            raise BudgetExceededError("too slow")

        measurement, result = runner.measure("x", blow_up)
        assert measurement.aborted
        assert result is None
        assert runner.aborted
        # subsequent points stay aborted without re-running
        measurement, __ = runner.measure("y", lambda: 1)
        assert measurement.aborted
