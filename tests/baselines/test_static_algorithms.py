"""Cross-validation: GORDIAN, DUCC and HCA against the oracle."""

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.baselines.ducc import Ducc, discover_ducc
from repro.baselines.gordian import Gordian, PrefixTree, discover_gordian
from repro.baselines.hca import discover_hca
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from tests.conftest import random_relation

ALGORITHMS = {
    "gordian": discover_gordian,
    "ducc": discover_ducc,
    "hca": discover_hca,
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_relations(self, name, seed):
        relation = random_relation(seed)
        expected = discover_bruteforce(relation)
        got = ALGORITHMS[name](relation)
        assert sorted(got[0]) == sorted(expected[0]), name
        assert sorted(got[1]) == sorted(expected[1]), name

    def test_single_row(self, name):
        relation = Relation.from_rows(Schema(["a", "b"]), [("x", "y")])
        assert ALGORITHMS[name](relation) == ([0], [])

    def test_identical_rows(self, name):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [("x", "y"), ("x", "y"), ("x", "y")]
        )
        mucs, mnucs = ALGORITHMS[name](relation)
        assert mucs == []
        assert mnucs == [0b11]

    def test_key_column(self, name):
        relation = Relation.from_rows(
            Schema(["id", "v"]), [("1", "x"), ("2", "x"), ("3", "x")]
        )
        mucs, mnucs = ALGORITHMS[name](relation)
        assert sorted(mucs) == [0b01]
        assert sorted(mnucs) == [0b10]


class TestPrefixTree:
    def test_insert_and_len(self):
        tree = PrefixTree(2)
        tree.insert(("a", "b"))
        tree.insert(("a", "b"))
        tree.insert(("a", "c"))
        assert len(tree) == 3

    def test_remove_decrements_and_prunes(self):
        tree = PrefixTree(2)
        tree.insert(("a", "b"))
        tree.insert(("a", "b"))
        tree.remove(("a", "b"))
        assert len(tree) == 1
        tree.remove(("a", "b"))
        assert len(tree) == 0
        assert tree.root == {}

    def test_remove_missing_raises(self):
        tree = PrefixTree(2)
        tree.insert(("a", "b"))
        with pytest.raises(KeyError):
            tree.remove(("a", "z"))

    def test_needs_a_column(self):
        with pytest.raises(ValueError):
            PrefixTree(0)


class TestGordianSeeds:
    def test_seeded_traversal_matches_unseeded(self):
        for seed in range(5):
            relation = random_relation(seed, n_columns=5, n_rows=20, domain=3)
            gordian = Gordian.from_relation(relation)
            plain = gordian.maximal_non_uniques()
            seeded = gordian.maximal_non_uniques(seeds=plain)
            assert sorted(seeded) == sorted(plain)


class TestDuccInternals:
    def test_known_uniques_prune_lattice(self):
        relation = random_relation(3, n_columns=5, n_rows=25, domain=3)
        expected = discover_bruteforce(relation)
        ducc = Ducc(relation, known_uniques=expected[0])
        got = ducc.run()
        assert sorted(got[0]) == sorted(expected[0])
        assert sorted(got[1]) == sorted(expected[1])

    def test_deterministic_given_seed(self):
        relation = random_relation(4, n_columns=5, n_rows=25, domain=3)
        first = Ducc(relation, seed=42).run()
        second = Ducc(relation, seed=42).run()
        assert first == second

    def test_counters_move(self):
        relation = random_relation(5, n_columns=4, n_rows=20, domain=3)
        ducc = Ducc(relation)
        ducc.run()
        assert ducc.nodes_classified > 0
