"""Structured GORDIAN cases that stress specific traversal paths."""

from repro.baselines.bruteforce import discover_bruteforce
from repro.baselines.gordian import Gordian, discover_gordian
from repro.storage.relation import Relation
from repro.storage.schema import Schema


def profile_of(rows, n_columns):
    schema = Schema([f"c{i}" for i in range(n_columns)])
    return Relation.from_rows(schema, rows)


class TestTraversalShapes:
    def test_duplicates_only_in_skip_branches(self):
        """Duplicates visible only after projecting the first column
        away: the skip branch must find them."""
        relation = profile_of(
            [("1", "x", "y"), ("2", "x", "y"), ("3", "z", "w")], 3
        )
        mucs, mnucs = discover_gordian(relation)
        expected = discover_bruteforce(relation)
        assert sorted(mucs) == sorted(expected[0])
        assert sorted(mnucs) == sorted(expected[1])
        # the pair duplicates exactly on {c1, c2}
        assert 0b110 in mnucs

    def test_duplicates_along_full_prefix(self):
        """Fully identical prefixes exercise deep follow chains."""
        relation = profile_of(
            [("a", "b", "1"), ("a", "b", "2"), ("a", "b", "3")], 3
        )
        mucs, mnucs = discover_gordian(relation)
        assert mucs == [0b100]  # only the last column distinguishes
        assert 0b011 in mnucs

    def test_interleaved_groups(self):
        """Two duplicate groups sharing values across branches."""
        relation = profile_of(
            [
                ("a", "1"), ("b", "1"), ("a", "2"), ("b", "2"),
            ],
            2,
        )
        mucs, mnucs = discover_gordian(relation)
        expected = discover_bruteforce(relation)
        assert sorted(mucs) == sorted(expected[0])
        assert sorted(mnucs) == sorted(expected[1])

    def test_seed_with_universe_short_circuits(self):
        """Seeding with the full column set prunes the whole traversal
        (used by GORDIAN-INC when duplicates of everything existed)."""
        relation = profile_of([("a", "b"), ("a", "b"), ("c", "d")], 2)
        gordian = Gordian.from_relation(relation)
        mnucs = gordian.maximal_non_uniques(seeds=[0b11])
        assert mnucs == [0b11]
        assert gordian.nodes_visited <= 2

    def test_counts_memoized_across_branches(self):
        relation = profile_of(
            [(str(i % 3), str(i % 2), str(i)) for i in range(12)], 3
        )
        gordian = Gordian.from_relation(relation)
        first = gordian.maximal_non_uniques()
        second = gordian.maximal_non_uniques()
        assert first == second  # rerunning on a static tree is stable


class TestValueEdgeCases:
    def test_values_colliding_across_columns(self):
        """The same string in different columns must not confuse the
        per-level grouping."""
        relation = profile_of(
            [("x", "x"), ("x", "y"), ("y", "x")], 2
        )
        expected = discover_bruteforce(relation)
        got = discover_gordian(relation)
        assert sorted(got[0]) == sorted(expected[0])
        assert sorted(got[1]) == sorted(expected[1])

    def test_single_column_relation(self):
        relation = profile_of([("a",), ("a",), ("b",)], 1)
        mucs, mnucs = discover_gordian(relation)
        assert mucs == []
        assert mnucs == [0b1]
