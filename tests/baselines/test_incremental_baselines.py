"""Unit tests for GORDIAN-INC and DUCC-INC."""

import random

import pytest

from repro.baselines.bruteforce import discover_bruteforce
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian_inc import GordianInc
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from tests.conftest import random_relation, random_rows


class TestGordianInc:
    def test_insert_batch_exact(self):
        for seed in range(10):
            relation = random_relation(seed, n_columns=4, n_rows=15, domain=3)
            mucs, mnucs = discover_bruteforce(relation)
            inc = GordianInc(relation, mnucs)
            batch = random_rows(seed + 1000, 4, 4, 3)
            got = inc.handle_inserts(batch)
            relation.insert_many(batch)
            expected = discover_bruteforce(relation)
            assert sorted(got[0]) == sorted(expected[0])
            assert sorted(got[1]) == sorted(expected[1])

    def test_delete_batch_exact(self):
        for seed in range(10):
            relation = random_relation(seed, n_columns=4, n_rows=15, domain=3)
            mucs, mnucs = discover_bruteforce(relation)
            inc = GordianInc(relation, mnucs)
            rng = random.Random(seed)
            doomed = rng.sample(list(relation.iter_ids()), 3)
            doomed_rows = [relation.row(tuple_id) for tuple_id in doomed]
            got = inc.handle_deletes(doomed_rows)
            relation.delete_many(doomed)
            expected = discover_bruteforce(relation)
            assert sorted(got[0]) == sorted(expected[0])
            assert sorted(got[1]) == sorted(expected[1])

    def test_consecutive_batches_reuse_tree(self):
        relation = random_relation(7, n_columns=3, n_rows=10, domain=3)
        mucs, mnucs = discover_bruteforce(relation)
        inc = GordianInc(relation, mnucs)
        tree = inc.tree
        batch_one = random_rows(1, 3, 2, 3)
        batch_two = random_rows(2, 3, 2, 3)
        inc.handle_inserts(batch_one)
        inc.handle_inserts(batch_two)
        assert inc.tree is tree
        assert len(tree) == 14


class TestDuccInc:
    def test_delete_batch_exact(self):
        for seed in range(10):
            relation = random_relation(200 + seed, n_columns=4, n_rows=16, domain=3)
            mucs, __ = discover_bruteforce(relation)
            rng = random.Random(seed)
            doomed = rng.sample(list(relation.iter_ids()), 4)
            inc = DuccInc(relation, mucs)
            got = inc.handle_deletes(doomed)
            expected = discover_bruteforce(relation)
            assert sorted(got[0]) == sorted(expected[0])
            assert sorted(got[1]) == sorted(expected[1])

    def test_applies_deletes_to_relation(self):
        relation = random_relation(1, n_columns=3, n_rows=10, domain=3)
        mucs, __ = discover_bruteforce(relation)
        inc = DuccInc(relation, mucs)
        inc.handle_deletes([0, 1])
        assert len(relation) == 8

    def test_sequential_delete_batches(self):
        relation = random_relation(2, n_columns=3, n_rows=12, domain=3)
        mucs, __ = discover_bruteforce(relation)
        inc = DuccInc(relation, mucs)
        inc.handle_deletes([0])
        got = inc.handle_deletes([1, 2])
        expected = discover_bruteforce(relation)
        assert sorted(got[0]) == sorted(expected[0])


class TestDbmsChecker:
    def test_accepts_and_rejects(self):
        from repro.baselines.dbms import DbmsConstraintChecker

        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [("1", "x"), ("2", "y")])
        checker = DbmsConstraintChecker(relation, [0b01])
        report = checker.insert_batch([("3", "z"), ("1", "w"), ("4", "v")])
        assert report.accepted == 2
        assert report.rejected == 1
        assert report.violations == [(1, 0b01)]

    def test_rejected_tuple_leaves_no_trace(self):
        from repro.baselines.dbms import DbmsConstraintChecker

        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [("1", "x")])
        checker = DbmsConstraintChecker(relation, [0b01, 0b10])
        # violates the second constraint (b='x'), so its 'a' projection
        # must not linger in the first constraint's index
        report = checker.insert_batch([("9", "x")])
        assert report.rejected == 1
        report = checker.insert_batch([("9", "new")])
        assert report.accepted == 1

    def test_enforce_false_skips_validation(self):
        from repro.baselines.dbms import DbmsConstraintChecker

        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("1",)])
        checker = DbmsConstraintChecker(relation, [0b1])
        report = checker.insert_batch([("1",), ("1",)], enforce=False)
        assert report.accepted == 2

    def test_delete_batch_unindexes(self):
        from repro.baselines.dbms import DbmsConstraintChecker

        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("1",)])
        checker = DbmsConstraintChecker(relation, [0b1])
        checker.delete_batch([("1",)])
        assert checker.insert_batch([("1",)]).accepted == 1

    def test_empty_constraint_ignored(self):
        from repro.baselines.dbms import DbmsConstraintChecker

        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [("1",)])
        checker = DbmsConstraintChecker(relation, [0])
        assert checker.n_constraints == 0
