"""Unit tests for the brute-force oracles (and their mutual agreement)."""

import pytest

from repro.baselines.bruteforce import discover_bruteforce, discover_lattice_scan
from repro.profiling.verify import verify_profile
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from tests.conftest import random_relation


class TestEdgeCases:
    def test_empty_relation(self):
        relation = Relation(Schema(["a", "b"]))
        assert discover_bruteforce(relation) == ([0], [])

    def test_single_row(self):
        relation = Relation.from_rows(Schema(["a"]), [("x",)])
        assert discover_bruteforce(relation) == ([0], [])

    def test_identical_rows(self):
        relation = Relation.from_rows(Schema(["a", "b"]), [("x", "y"), ("x", "y")])
        mucs, mnucs = discover_bruteforce(relation)
        assert mucs == []
        assert mnucs == [0b11]

    def test_all_columns_unique(self):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [("1", "x"), ("2", "y"), ("3", "z")]
        )
        mucs, mnucs = discover_bruteforce(relation)
        assert sorted(mucs) == [0b01, 0b10]
        assert mnucs == [0]

    def test_lattice_scan_rejects_wide_relations(self):
        relation = Relation(Schema([f"c{i}" for i in range(21)]))
        with pytest.raises(ValueError):
            discover_lattice_scan(relation)


class TestOraclesAgree:
    @pytest.mark.parametrize("seed", range(25))
    def test_agree_sets_vs_lattice_scan(self, seed):
        relation = random_relation(seed)
        by_pairs = discover_bruteforce(relation)
        by_scan = discover_lattice_scan(relation)
        assert sorted(by_pairs[0]) == sorted(by_scan[0])
        assert sorted(by_pairs[1]) == sorted(by_scan[1])

    @pytest.mark.parametrize("seed", range(10))
    def test_profile_verifies(self, seed):
        relation = random_relation(500 + seed)
        mucs, mnucs = discover_bruteforce(relation)
        verify_profile(relation, mucs, mnucs, exhaustive=True)
