"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer_gate():
    """Fail the run if the lock sanitizer recorded any fork-held report.

    Under ``REPRO_SANITIZE=locks`` every project lock is an instrumented
    wrapper; order violations raise at the faulty acquire already, but
    fork-held observations are *recorded* (the parent cannot raise on
    behalf of the forking child) and must be drained here or the run
    silently passed over a real fork hazard.
    """
    yield
    from repro.sanitize import assert_no_reports, locks_enabled

    if locks_enabled():
        assert_no_reports()


@pytest.fixture
def persons_schema() -> Schema:
    """The schema of the paper's Table I example."""
    return Schema(["Name", "Phone", "Age"])


@pytest.fixture
def persons_relation(persons_schema: Schema) -> Relation:
    """The paper's Table I instance (without the pending insert)."""
    return Relation.from_rows(
        persons_schema,
        [
            ("Lee", "345", "20"),
            ("Payne", "245", "30"),
            ("Lee", "234", "30"),
        ],
    )


def random_relation(
    seed: int,
    n_columns: int | None = None,
    n_rows: int | None = None,
    domain: int | None = None,
) -> Relation:
    """A small random relation for oracle-based comparisons."""
    rng = random.Random(seed)
    n_columns = n_columns if n_columns is not None else rng.randint(2, 7)
    n_rows = n_rows if n_rows is not None else rng.randint(2, 30)
    domain = domain if domain is not None else rng.randint(2, 5)
    schema = Schema([f"c{index}" for index in range(n_columns)])
    rows = [
        tuple(str(rng.randrange(domain)) for _ in range(n_columns))
        for _ in range(n_rows)
    ]
    return Relation.from_rows(schema, rows)


def random_rows(seed: int, n_columns: int, n_rows: int, domain: int) -> list[tuple]:
    rng = random.Random(seed)
    return [
        tuple(str(rng.randrange(domain)) for _ in range(n_columns))
        for _ in range(n_rows)
    ]
